//! Plan DAGs.
//!
//! A [`LogicalPlan`] is an arena of [`PlanNode`]s in topological order
//! (inputs always precede consumers) with a designated root. The arena form
//! makes the multistore analyses cheap: split enumeration walks node sets,
//! view rewriting replaces a subtree with a `ScanView` leaf, and fingerprints
//! memoize per node.

use crate::op::Operator;
use miso_common::ids::NodeId;
use miso_common::{MisoError, Result};
use miso_data::Schema;
use std::collections::HashSet;
use std::fmt;

/// One node of a plan DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// This node's id (== its index in the arena).
    pub id: NodeId,
    /// The operator.
    pub op: Operator,
    /// Input node ids (length = `op.input_arity()`).
    pub inputs: Vec<NodeId>,
    /// Output schema, derived at construction.
    pub schema: Schema,
}

/// An immutable logical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalPlan {
    nodes: Vec<PlanNode>,
    root: NodeId,
}

impl LogicalPlan {
    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The root node.
    pub fn root_node(&self) -> &PlanNode {
        self.node(self.root)
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.raw() as usize]
    }

    /// All nodes in topological order (inputs before consumers).
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the plan has no nodes (never constructible via the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The output schema of the whole plan.
    pub fn schema(&self) -> &Schema {
        &self.root_node().schema
    }

    /// Ids of all nodes in the subtree rooted at `id` (including `id`).
    pub fn descendants(&self, id: NodeId) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                stack.extend(self.node(n).inputs.iter().copied());
            }
        }
        seen
    }

    /// Whether any node in the subtree rooted at `id` is HV-pinned (a UDF).
    pub fn subtree_has_udf(&self, id: NodeId) -> bool {
        self.descendants(id)
            .iter()
            .any(|&n| self.node(n).op.hv_only())
    }

    /// Whether the whole plan references any UDF.
    pub fn has_udf(&self) -> bool {
        self.subtree_has_udf(self.root)
    }

    /// The base logs this plan scans (deduplicated, sorted).
    pub fn base_logs(&self) -> Vec<String> {
        let mut logs: Vec<String> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Operator::ScanLog { log } => Some(log.clone()),
                _ => None,
            })
            .collect();
        logs.sort();
        logs.dedup();
        logs
    }

    /// The views this plan scans (after rewriting).
    pub fn scanned_views(&self) -> Vec<String> {
        let mut views: Vec<String> = self
            .nodes
            .iter()
            .filter_map(|n| match &n.op {
                Operator::ScanView { view, .. } => Some(view.clone()),
                _ => None,
            })
            .collect();
        views.sort();
        views.dedup();
        views
    }

    /// Extracts the subtree rooted at `id` as a standalone plan.
    pub fn subplan(&self, id: NodeId) -> LogicalPlan {
        let mut builder = PlanBuilder::new();
        let mut mapping = std::collections::HashMap::new();
        // Walk the arena in order; only copy nodes in the subtree.
        let keep = self.descendants(id);
        for node in &self.nodes {
            if !keep.contains(&node.id) {
                continue;
            }
            let new_inputs: Vec<NodeId> = node.inputs.iter().map(|i| mapping[i]).collect();
            let new_id = builder
                .add(node.op.clone(), new_inputs)
                .expect("subtree of a valid plan is valid");
            mapping.insert(node.id, new_id);
        }
        builder.finish(mapping[&id]).expect("subtree root exists")
    }

    /// Returns a new plan in which the subtree rooted at `target` is replaced
    /// by a `ScanView` leaf over `view_name` (whose schema must equal the
    /// replaced node's schema — the caller, i.e. the rewriter, guarantees
    /// semantic equivalence).
    pub fn replace_with_view(&self, target: NodeId, view_name: &str) -> Result<LogicalPlan> {
        let target_schema = self.node(target).schema.clone();
        let mut builder = PlanBuilder::new();
        let mut mapping = std::collections::HashMap::new();
        let dropped = {
            let mut d = self.descendants(target);
            d.remove(&target);
            d
        };
        for node in &self.nodes {
            if dropped.contains(&node.id) {
                continue;
            }
            let new_id = if node.id == target {
                builder.add(
                    Operator::ScanView {
                        view: view_name.to_string(),
                        schema: target_schema.clone(),
                    },
                    vec![],
                )?
            } else {
                let new_inputs: Vec<NodeId> = node
                    .inputs
                    .iter()
                    .map(|i| {
                        mapping.get(i).copied().ok_or_else(|| {
                            MisoError::Plan(format!(
                                "node {} consumed by multiple branches was dropped",
                                i
                            ))
                        })
                    })
                    .collect::<Result<_>>()?;
                builder.add(node.op.clone(), new_inputs)?
            };
            mapping.insert(node.id, new_id);
        }
        builder.finish(mapping[&self.root])
    }

    /// Renders the plan as an indented tree (children under parents).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, 0, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let node = self.node(id);
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} [{}]\n", node.op.label(), node.id));
        for &input in &node.inputs {
            self.render_node(input, depth + 1, out);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Constructs plans bottom-up, validating arity and deriving schemas.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    nodes: Vec<PlanNode>,
}

impl PlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PlanBuilder { nodes: Vec::new() }
    }

    /// Adds a node; inputs must already exist (ids returned by prior `add`
    /// calls), which makes arena order topological by construction.
    pub fn add(&mut self, op: Operator, inputs: Vec<NodeId>) -> Result<NodeId> {
        if inputs.len() != op.input_arity() {
            return Err(MisoError::Plan(format!(
                "operator {} expects {} inputs, got {}",
                op.label(),
                op.input_arity(),
                inputs.len()
            )));
        }
        for input in &inputs {
            if input.raw() as usize >= self.nodes.len() {
                return Err(MisoError::Plan(format!("input {input} does not exist yet")));
            }
        }
        let input_schemas: Vec<&Schema> = inputs
            .iter()
            .map(|i| &self.nodes[i.raw() as usize].schema)
            .collect();
        // Validate expression column references against input schemas.
        Self::validate_columns(&op, &input_schemas)?;
        let schema = op.derive_schema(&input_schemas);
        let id = NodeId(self.nodes.len() as u64);
        self.nodes.push(PlanNode {
            id,
            op,
            inputs,
            schema,
        });
        Ok(id)
    }

    fn validate_columns(op: &Operator, inputs: &[&Schema]) -> Result<()> {
        let check_expr = |e: &crate::expr::Expr, arity: usize| -> Result<()> {
            let mut bad = None;
            e.visit(&mut |sub| {
                if let crate::expr::Expr::Column(i) = sub {
                    if *i >= arity && bad.is_none() {
                        bad = Some(*i);
                    }
                }
            });
            match bad {
                Some(i) => Err(MisoError::Plan(format!(
                    "column ${i} out of range (arity {arity})"
                ))),
                None => Ok(()),
            }
        };
        match op {
            Operator::Filter { predicate } => check_expr(predicate, inputs[0].arity()),
            Operator::Project { exprs } => {
                for (_, e) in exprs {
                    check_expr(e, inputs[0].arity())?;
                }
                Ok(())
            }
            Operator::Join { on } => {
                for &(l, r) in on {
                    if l >= inputs[0].arity() || r >= inputs[1].arity() {
                        return Err(MisoError::Plan(format!(
                            "join key (l{l}, r{r}) out of range"
                        )));
                    }
                }
                Ok(())
            }
            Operator::Aggregate { group_by, aggs } => {
                for &g in group_by {
                    if g >= inputs[0].arity() {
                        return Err(MisoError::Plan(format!("group-by column {g} out of range")));
                    }
                }
                for agg in aggs {
                    if let Some(e) = &agg.input {
                        check_expr(e, inputs[0].arity())?;
                    }
                }
                Ok(())
            }
            Operator::Sort { keys } => {
                for &(k, _) in keys {
                    if k >= inputs[0].arity() {
                        return Err(MisoError::Plan(format!("sort column {k} out of range")));
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Finalizes the plan with the given root.
    pub fn finish(self, root: NodeId) -> Result<LogicalPlan> {
        if root.raw() as usize >= self.nodes.len() {
            return Err(MisoError::Plan(format!("root {root} does not exist")));
        }
        Ok(LogicalPlan {
            nodes: self.nodes,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc, Expr};
    use miso_data::DataType;

    /// scan(twitter) -> project(uid, city) -> filter(uid=1) -> agg
    fn sample() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        (
                            "uid".into(),
                            Expr::col(0).get("user_id").cast(DataType::Int),
                        ),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![1],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![filt],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    #[test]
    fn builder_derives_schemas() {
        let p = sample();
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().names(), vec!["city", "n"]);
        assert_eq!(p.base_logs(), vec!["twitter"]);
    }

    #[test]
    fn builder_rejects_bad_arity_and_refs() {
        let mut b = PlanBuilder::new();
        assert!(b.add(Operator::Limit { n: 1 }, vec![]).is_err());
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        assert!(b
            .add(
                Operator::Filter {
                    predicate: Expr::col(5).eq(Expr::lit(1i64))
                },
                vec![scan]
            )
            .is_err());
        assert!(b.add(Operator::Limit { n: 1 }, vec![NodeId(99)]).is_err());
    }

    #[test]
    fn descendants_and_subplan() {
        let p = sample();
        let filt_id = NodeId(2);
        let desc = p.descendants(filt_id);
        assert_eq!(desc.len(), 3);
        let sub = p.subplan(filt_id);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.schema().names(), vec!["uid", "city"]);
    }

    #[test]
    fn replace_with_view_swaps_subtree() {
        let p = sample();
        let filt_id = NodeId(2);
        let rewritten = p.replace_with_view(filt_id, "v_abc").unwrap();
        assert_eq!(
            rewritten.len(),
            2,
            "scan+project+filter collapse to ScanView"
        );
        assert_eq!(rewritten.scanned_views(), vec!["v_abc"]);
        assert_eq!(rewritten.schema().names(), vec!["city", "n"]);
        assert!(rewritten.base_logs().is_empty());
    }

    #[test]
    fn udf_detection() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        let udf = b
            .add(
                Operator::Udf {
                    name: "extract_sentiment".into(),
                    output: Schema::new(vec![miso_data::Field::new("s", DataType::Float)]),
                },
                vec![scan],
            )
            .unwrap();
        let p = b.finish(udf).unwrap();
        assert!(p.has_udf());
        assert!(p.subtree_has_udf(udf));
        assert!(!sample().has_udf());
    }

    #[test]
    fn join_plan_two_inputs() {
        let mut b = PlanBuilder::new();
        let t = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let tp = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![t],
            )
            .unwrap();
        let f = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let fp = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![f],
            )
            .unwrap();
        let join = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![tp, fp])
            .unwrap();
        let p = b.finish(join).unwrap();
        assert_eq!(p.base_logs(), vec!["foursquare", "twitter"]);
        assert_eq!(p.schema().names(), vec!["uid", "r_uid"]);
    }

    #[test]
    fn render_shows_tree() {
        let text = sample().render();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("ScanLog(twitter)"));
        let agg_line = text.lines().next().unwrap();
        assert!(!agg_line.starts_with(' '), "root is unindented");
    }
}
