//! Scalar and aggregate expressions.
//!
//! Expressions reference their input relation positionally
//! ([`Expr::Column`]); name resolution happens once, in `miso-lang`'s
//! lowering. Evaluation lives in `miso-exec`; this module defines structure,
//! typing, and the canonicalization hooks used by plan fingerprints.

use miso_data::{DataType, Schema, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Arithmetic.
    Add,
    /// Arithmetic.
    Sub,
    /// Arithmetic.
    Mul,
    /// Arithmetic (float division; integer operands produce float).
    Div,
    /// Remainder (integers only).
    Mod,
    /// Comparison.
    Eq,
    /// Comparison.
    Ne,
    /// Comparison.
    Lt,
    /// Comparison.
    Le,
    /// Comparison.
    Gt,
    /// Comparison.
    Ge,
    /// Logical (three-valued over NULL is *not* modeled: NULL operands yield
    /// NULL which is not true).
    And,
    /// Logical.
    Or,
}

impl BinOp {
    /// Whether this operator is commutative (used by canonicalization).
    pub fn commutative(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or
        )
    }

    /// Whether this operator yields a boolean.
    pub fn is_predicate(&self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// The mirrored comparison (`a < b` ≡ `b > a`), used to canonicalize
    /// comparisons; `None` for non-comparison ops.
    pub fn mirrored(&self) -> Option<BinOp> {
        match self {
            BinOp::Lt => Some(BinOp::Gt),
            BinOp::Le => Some(BinOp::Ge),
            BinOp::Gt => Some(BinOp::Lt),
            BinOp::Ge => Some(BinOp::Le),
            BinOp::Eq => Some(BinOp::Eq),
            BinOp::Ne => Some(BinOp::Ne),
            _ => None,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL` test.
    IsNull,
    /// `IS NOT NULL` test.
    IsNotNull,
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Neg => "-",
            UnaryOp::IsNull => "IS NULL",
            UnaryOp::IsNotNull => "IS NOT NULL",
        };
        f.write_str(s)
    }
}

/// A scalar expression over a single input relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Positional column reference.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// JSON field extraction `input->'key'` — the SerDe path for raw logs.
    FieldGet {
        /// Expression yielding a JSON object.
        input: Box<Expr>,
        /// Field name to extract; missing fields yield NULL.
        key: String,
    },
    /// Explicit cast; failures yield NULL (Hive semantics).
    Cast {
        /// Input expression.
        input: Box<Expr>,
        /// Target type.
        ty: DataType,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        input: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Scalar builtin function (`lower`, `contains`, `array_contains`, ...).
    Func {
        /// Function name, lower-cased.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(idx: usize) -> Expr {
        Expr::Column(idx)
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Field extraction shorthand.
    pub fn get(self, key: impl Into<String>) -> Expr {
        Expr::FieldGet {
            input: Box::new(self),
            key: key.into(),
        }
    }

    /// Cast shorthand.
    pub fn cast(self, ty: DataType) -> Expr {
        Expr::Cast {
            input: Box::new(self),
            ty,
        }
    }

    /// All column indexes referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Column(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Column(_) | Expr::Literal(_) => {}
            Expr::FieldGet { input, .. } | Expr::Cast { input, .. } | Expr::Unary { input, .. } => {
                input.visit(f)
            }
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Rewrites every column reference through `map` (e.g. after a
    /// projection reorders inputs). `map` returns the new index.
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(map(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::FieldGet { input, key } => Expr::FieldGet {
                input: Box::new(input.remap_columns(map)),
                key: key.clone(),
            },
            Expr::Cast { input, ty } => Expr::Cast {
                input: Box::new(input.remap_columns(map)),
                ty: *ty,
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.remap_columns(map)),
            },
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Func { name, args } => Expr::Func {
                name: name.clone(),
                args: args.iter().map(|a| a.remap_columns(map)).collect(),
            },
        }
    }

    /// Splits a conjunctive predicate into its AND-ed factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Conjoins factors back into a single predicate; `None` for empty input.
    pub fn conjoin(factors: Vec<Expr>) -> Option<Expr> {
        factors.into_iter().reduce(|acc, e| acc.and(e))
    }

    /// Infers the static result type against `input` schema. `Json` flows
    /// through operations whose operand types are opaque.
    pub fn infer_type(&self, input: &Schema) -> DataType {
        match self {
            Expr::Column(i) => input
                .fields()
                .get(*i)
                .map(|f| f.ty)
                .unwrap_or(DataType::Json),
            Expr::Literal(v) => match v {
                Value::Bool(_) => DataType::Bool,
                Value::Int(_) => DataType::Int,
                Value::Float(_) => DataType::Float,
                Value::Str(_) => DataType::Str,
                _ => DataType::Json,
            },
            Expr::FieldGet { .. } => DataType::Json,
            Expr::Cast { ty, .. } => *ty,
            Expr::Unary { op, .. } => match op {
                UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull => DataType::Bool,
                UnaryOp::Neg => DataType::Float,
            },
            Expr::Binary { op, left, right } => {
                if op.is_predicate() {
                    DataType::Bool
                } else {
                    let l = left.infer_type(input);
                    let r = right.infer_type(input);
                    match *op {
                        BinOp::Div => DataType::Float,
                        _ => l.numeric_join(r).unwrap_or(DataType::Json),
                    }
                }
            }
            Expr::Func { name, .. } => match name.as_str() {
                "lower" | "upper" | "concat" | "substr" => DataType::Str,
                "contains" | "array_contains" | "like" => DataType::Bool,
                "length" | "year" | "month" | "day" | "hour" => DataType::Int,
                "abs" | "round" | "sqrt" | "ln" => DataType::Float,
                _ => DataType::Json,
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "${i}"),
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::FieldGet { input, key } => write!(f, "{input}->'{key}'"),
            Expr::Cast { input, ty } => write!(f, "CAST({input} AS {ty})"),
            Expr::Unary {
                op: UnaryOp::IsNull,
                input,
            } => write!(f, "({input} IS NULL)"),
            Expr::Unary {
                op: UnaryOp::IsNotNull,
                input,
            } => {
                write!(f, "({input} IS NOT NULL)")
            }
            Expr::Unary { op, input } => write!(f, "({op} {input})"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)` (non-null count).
    Count,
    /// Distinct non-null count.
    CountDistinct,
    /// Numeric sum.
    Sum,
    /// Minimum by the total value order.
    Min,
    /// Maximum by the total value order.
    Max,
    /// Numeric average.
    Avg,
}

impl AggFunc {
    /// The output type of the aggregate.
    pub fn output_type(&self, input_ty: DataType) -> DataType {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Sum => match input_ty {
                DataType::Int => DataType::Int,
                _ => DataType::Float,
            },
            AggFunc::Min | AggFunc::Max => input_ty,
            AggFunc::Avg => DataType::Float,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT_DISTINCT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// One aggregate in an Aggregate operator's output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument; `None` for `COUNT(*)`.
    pub input: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// Constructs an aggregate.
    pub fn new(func: AggFunc, input: Option<Expr>, name: impl Into<String>) -> Self {
        AggExpr {
            func,
            input,
            name: name.into(),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(e) => write!(f, "{}({}) AS {}", self.func, e, self.name),
            None => write!(f, "{}(*) AS {}", self.func, self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::Field;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::col(0).eq(Expr::lit(1i64)).and(
            Expr::col(1)
                .eq(Expr::lit(2i64))
                .and(Expr::col(2).eq(Expr::lit(3i64))),
        );
        assert_eq!(e.conjuncts().len(), 3);
        let rebuilt = Expr::conjoin(e.conjuncts().into_iter().cloned().collect()).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn referenced_columns_dedup_and_sort() {
        let e = Expr::col(3)
            .eq(Expr::col(1))
            .and(Expr::col(3).eq(Expr::lit(0i64)));
        assert_eq!(e.referenced_columns(), vec![1, 3]);
    }

    #[test]
    fn remap_columns_rewrites_everywhere() {
        let e = Expr::col(0).get("a").cast(DataType::Int).eq(Expr::col(2));
        let remapped = e.remap_columns(&|i| i + 10);
        assert_eq!(remapped.referenced_columns(), vec![10, 12]);
    }

    #[test]
    fn type_inference() {
        let schema = Schema::new(vec![
            Field::new("j", DataType::Json),
            Field::new("n", DataType::Int),
        ]);
        assert_eq!(Expr::col(1).infer_type(&schema), DataType::Int);
        assert_eq!(Expr::col(0).get("x").infer_type(&schema), DataType::Json);
        assert_eq!(
            Expr::col(0)
                .get("x")
                .cast(DataType::Str)
                .infer_type(&schema),
            DataType::Str
        );
        assert_eq!(
            Expr::col(1).eq(Expr::lit(3i64)).infer_type(&schema),
            DataType::Bool
        );
        let sum = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col(1)),
            right: Box::new(Expr::lit(1.5f64)),
        };
        assert_eq!(sum.infer_type(&schema), DataType::Float);
        let div = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::col(1)),
            right: Box::new(Expr::lit(2i64)),
        };
        assert_eq!(div.infer_type(&schema), DataType::Float);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::col(0)
            .get("user_id")
            .cast(DataType::Int)
            .eq(Expr::lit(42i64));
        assert_eq!(e.to_string(), "(CAST($0->'user_id' AS INT) = 42)");
    }

    #[test]
    fn mirrored_comparisons() {
        assert_eq!(BinOp::Lt.mirrored(), Some(BinOp::Gt));
        assert_eq!(BinOp::Eq.mirrored(), Some(BinOp::Eq));
        assert_eq!(BinOp::Add.mirrored(), None);
    }

    #[test]
    fn agg_output_types() {
        assert_eq!(AggFunc::Count.output_type(DataType::Str), DataType::Int);
        assert_eq!(AggFunc::Sum.output_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Sum.output_type(DataType::Json), DataType::Float);
        assert_eq!(AggFunc::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Min.output_type(DataType::Str), DataType::Str);
    }
}
