//! Logical operators.
//!
//! The operator set mirrors what the paper's HiveQL workload needs:
//! relational operators (scan/filter/project/equijoin/aggregate/sort/limit)
//! plus opaque **UDFs**, which are pinned to HV ("a UDF that can only be
//! executed in HV" constrains split points). [`Operator::ScanView`] scans a
//! materialized view — it appears only after rewriting, never in freshly
//! lowered plans.

use crate::expr::{AggExpr, Expr};
use miso_data::{DataType, Field, Schema};
use std::fmt;

/// A logical operator. Input arity is implied: `Join` has two inputs, `Scan*`
/// none, everything else one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Operator {
    /// Scan a base log (raw JSON lines). Output schema is a single `Json`
    /// column named `record`; field extraction happens in a `Project` above.
    ScanLog {
        /// Base log name (`twitter`, `foursquare`, `landmarks`).
        log: String,
    },
    /// Scan a materialized view by name. Carries the view's schema, since the
    /// plan must be self-describing.
    ScanView {
        /// View name (canonical fingerprint string).
        view: String,
        /// The view's schema.
        schema: Schema,
    },
    /// Keep rows satisfying the predicate.
    Filter {
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Compute named output expressions.
    Project {
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Inner hash equijoin.
    Join {
        /// Pairs of `(left column, right column)` equated.
        on: Vec<(usize, usize)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Grouping columns (positional, may be empty for global aggregates).
        group_by: Vec<usize>,
        /// Aggregates computed per group.
        aggs: Vec<AggExpr>,
    },
    /// Apply a named user-defined function row transformer. UDFs execute
    /// only in HV; their schema effect is declared at registration and is
    /// carried here so plans are self-describing.
    Udf {
        /// Registered UDF name.
        name: String,
        /// Declared output schema.
        output: Schema,
    },
    /// Total sort.
    Sort {
        /// `(column, descending)` keys, in priority order.
        keys: Vec<(usize, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Row cap.
        n: u64,
    },
}

impl Operator {
    /// Number of inputs this operator consumes.
    pub fn input_arity(&self) -> usize {
        match self {
            Operator::ScanLog { .. } | Operator::ScanView { .. } => 0,
            Operator::Join { .. } => 2,
            _ => 1,
        }
    }

    /// Whether this operator must run in HV (paper: UDFs are HV-only).
    pub fn hv_only(&self) -> bool {
        matches!(self, Operator::Udf { .. })
    }

    /// Whether this operator is a leaf scan.
    pub fn is_scan(&self) -> bool {
        self.input_arity() == 0
    }

    /// Derives the output schema from input schemas. Panics if the number of
    /// inputs is wrong — plans are built through [`crate::PlanBuilder`],
    /// which enforces arity.
    pub fn derive_schema(&self, inputs: &[&Schema]) -> Schema {
        assert_eq!(inputs.len(), self.input_arity(), "operator arity mismatch");
        match self {
            Operator::ScanLog { .. } => Schema::new(vec![Field::new("record", DataType::Json)]),
            Operator::ScanView { schema, .. } => schema.clone(),
            Operator::Filter { .. } | Operator::Limit { .. } | Operator::Sort { .. } => {
                inputs[0].clone()
            }
            Operator::Project { exprs } => Schema::new(
                exprs
                    .iter()
                    .map(|(name, e)| Field::new(name.clone(), e.infer_type(inputs[0])))
                    .collect(),
            ),
            Operator::Join { .. } => inputs[0].join(inputs[1]),
            Operator::Aggregate { group_by, aggs } => {
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|&i| inputs[0].field_at(i).clone())
                    .collect();
                for agg in aggs {
                    let in_ty = agg
                        .input
                        .as_ref()
                        .map(|e| e.infer_type(inputs[0]))
                        .unwrap_or(DataType::Int);
                    fields.push(Field::new(agg.name.clone(), agg.func.output_type(in_ty)));
                }
                Schema::new(fields)
            }
            Operator::Udf { output, .. } => output.clone(),
        }
    }

    /// A short operator label for plan rendering.
    pub fn label(&self) -> String {
        match self {
            Operator::ScanLog { log } => format!("ScanLog({log})"),
            Operator::ScanView { view, .. } => format!("ScanView({view})"),
            Operator::Filter { predicate } => format!("Filter({predicate})"),
            Operator::Project { exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                format!("Project({})", names.join(", "))
            }
            Operator::Join { on } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("l{l}=r{r}")).collect();
                format!("Join({})", conds.join(" AND "))
            }
            Operator::Aggregate { group_by, aggs } => {
                format!("Aggregate(by {:?}, {} aggs)", group_by, aggs.len())
            }
            Operator::Udf { name, .. } => format!("Udf({name})"),
            Operator::Sort { keys } => format!("Sort({keys:?})"),
            Operator::Limit { n } => format!("Limit({n})"),
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, Expr};

    #[test]
    fn arity_is_structural() {
        assert_eq!(
            Operator::ScanLog {
                log: "twitter".into()
            }
            .input_arity(),
            0
        );
        assert_eq!(Operator::Join { on: vec![] }.input_arity(), 2);
        assert_eq!(Operator::Limit { n: 5 }.input_arity(), 1);
    }

    #[test]
    fn scan_log_schema_is_single_json_record() {
        let s = Operator::ScanLog {
            log: "twitter".into(),
        }
        .derive_schema(&[]);
        assert_eq!(s.arity(), 1);
        assert_eq!(s.field_at(0).name, "record");
        assert_eq!(s.field_at(0).ty, DataType::Json);
    }

    #[test]
    fn project_schema_uses_inferred_types() {
        let input = Operator::ScanLog { log: "t".into() }.derive_schema(&[]);
        let op = Operator::Project {
            exprs: vec![
                (
                    "uid".into(),
                    Expr::col(0).get("user_id").cast(DataType::Int),
                ),
                ("raw".into(), Expr::col(0).get("text")),
            ],
        };
        let s = op.derive_schema(&[&input]);
        assert_eq!(s.field("uid").unwrap().ty, DataType::Int);
        assert_eq!(s.field("raw").unwrap().ty, DataType::Json);
    }

    #[test]
    fn aggregate_schema_groups_then_aggs() {
        let input = Schema::new(vec![
            Field::new("city", DataType::Str),
            Field::new("score", DataType::Float),
        ]);
        let op = Operator::Aggregate {
            group_by: vec![0],
            aggs: vec![
                AggExpr::new(AggFunc::Count, None, "n"),
                AggExpr::new(AggFunc::Avg, Some(Expr::col(1)), "avg_score"),
            ],
        };
        let s = op.derive_schema(&[&input]);
        assert_eq!(s.names(), vec!["city", "n", "avg_score"]);
        assert_eq!(s.field("n").unwrap().ty, DataType::Int);
        assert_eq!(s.field("avg_score").unwrap().ty, DataType::Float);
    }

    #[test]
    fn join_schema_concats() {
        let l = Schema::new(vec![Field::new("a", DataType::Int)]);
        let r = Schema::new(vec![Field::new("b", DataType::Str)]);
        let s = Operator::Join { on: vec![(0, 0)] }.derive_schema(&[&l, &r]);
        assert_eq!(s.names(), vec!["a", "b"]);
    }

    #[test]
    fn only_udf_is_hv_pinned() {
        assert!(Operator::Udf {
            name: "sentiment".into(),
            output: Schema::empty()
        }
        .hv_only());
        assert!(!Operator::Filter {
            predicate: Expr::lit(true)
        }
        .hv_only());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn derive_schema_checks_arity() {
        Operator::Limit { n: 1 }.derive_schema(&[]);
    }
}
