//! Semantic plan fingerprints.
//!
//! Opportunistic views are identified by a canonical fingerprint of their
//! defining sub-plan, so the same subexpression computed by two different
//! queries (the paper's evolutionary workload revisits subexpressions
//! constantly) maps to the same view. Matching at this level is the
//! "semantic" reuse of the paper's \[15\] — in contrast to ReStore's syntactic
//! job-level matching.
//!
//! Canonicalization is deliberately conservative (false *negatives* cost
//! performance, false *positives* would be corruption):
//!
//! * conjunctive predicates hash as the *sorted multiset* of their factors,
//!   so `a AND b` ≡ `b AND a`;
//! * commutative binary operators sort their operand digests;
//! * comparisons normalize orientation via their mirrored operator, so
//!   `x < 5` ≡ `5 > x`;
//! * everything else is structural.
//!
//! The digest is FNV-1a/64 folded over a tagged pre-order encoding — stable
//! across processes and platforms, which keeps view names reproducible.

use crate::expr::{AggExpr, BinOp, Expr};
use crate::op::Operator;
use crate::plan::LogicalPlan;
use miso_common::ids::NodeId;
use miso_data::{Schema, Value};
use std::collections::HashMap;
use std::fmt;

/// A 64-bit semantic digest of a sub-plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Canonical view name derived from the digest (stable across runs).
    pub fn view_name(&self) -> String {
        format!("v_{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Parses a canonical `v_<16 hex digits>` view name back to its fingerprint.
pub fn parse_view_fingerprint(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("v_")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a/64 over a stream of `u64` words — the workspace's standard cheap
/// stable digest, exposed so caches can build composite keys from
/// fingerprints (e.g. the tuner's `(plan, view-set)` what-if cache).
pub fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv::new();
    for w in words {
        h.u64(w);
    }
    h.finish()
}

/// FNV-1a/64 of a string (length-prefixed, like every other digest here).
pub fn fnv1a_str(s: &str) -> u64 {
    let mut h = Fnv::new();
    h.str(s);
    h.finish()
}

/// An FNV-1a/64 [`std::hash::Hasher`].
///
/// Feeding a type's `Hash` impl through this hasher yields a digest that is
/// *consistent with its `Eq`* (the `Hash` contract) yet — unlike
/// `RandomState` — deterministic across processes and free of per-map seed
/// state. The execution engine hashes join and group-by keys
/// (`miso_data::Value` tuples) this way: equal keys always collide, unequal
/// keys are disambiguated by an explicit equality check at the probe site,
/// so the u64 can be precomputed once per row and reused.
#[derive(Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// FNV-1a/64 digest of any `Hash` value via [`FnvHasher`] — equal values
/// hash equal, and the result is stable within a build of the workspace.
pub fn fnv1a_hash_one<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FnvHasher::default();
    v.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

/// Incremental FNV-1a/64.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Computes fingerprints for every node of `plan`, memoized bottom-up.
pub fn fingerprint_all(plan: &LogicalPlan) -> HashMap<NodeId, Fingerprint> {
    let mut out: HashMap<NodeId, Fingerprint> = HashMap::with_capacity(plan.len());
    for node in plan.nodes() {
        let input_fps: Vec<u64> = node.inputs.iter().map(|i| out[i].0).collect();
        let fp = fingerprint_op(&node.op, &input_fps);
        out.insert(node.id, Fingerprint(fp));
    }
    out
}

/// Fingerprint of the subtree rooted at `id`.
pub fn fingerprint_subtree(plan: &LogicalPlan, id: NodeId) -> Fingerprint {
    fingerprint_all(plan)[&id]
}

/// Fingerprint of a whole plan.
pub fn fingerprint_plan(plan: &LogicalPlan) -> Fingerprint {
    fingerprint_subtree(plan, plan.root())
}

fn fingerprint_op(op: &Operator, inputs: &[u64]) -> u64 {
    let mut h = Fnv::new();
    match op {
        Operator::ScanLog { log } => {
            h.byte(1);
            h.str(log);
        }
        Operator::ScanView { view, .. } => {
            // A view scan IS the view's defining expression. Canonical view
            // names embed the defining fingerprint, so scanning view `v_X`
            // fingerprints as X itself — making identity *compositional*:
            // `agg(ScanView(F))` equals `agg(F's defining subtree)`, which is
            // what lets views harvested from already-rewritten plans match
            // later raw queries.
            if let Some(fp) = parse_view_fingerprint(view) {
                return fp;
            }
            // Non-canonical names (ETL tables, tests): structural hash.
            h.byte(2);
            h.str(view);
        }
        Operator::Filter { predicate } => {
            h.byte(3);
            // Order-insensitive conjunct multiset.
            let mut factor_digests: Vec<u64> = predicate
                .conjuncts()
                .iter()
                .map(|e| expr_digest(e))
                .collect();
            factor_digests.sort_unstable();
            h.u64(factor_digests.len() as u64);
            for d in factor_digests {
                h.u64(d);
            }
        }
        Operator::Project { exprs } => {
            h.byte(4);
            h.u64(exprs.len() as u64);
            for (name, e) in exprs {
                h.str(name);
                h.u64(expr_digest(e));
            }
        }
        Operator::Join { on } => {
            h.byte(5);
            h.u64(on.len() as u64);
            for &(l, r) in on {
                h.u64(l as u64);
                h.u64(r as u64);
            }
        }
        Operator::Aggregate { group_by, aggs } => {
            h.byte(6);
            h.u64(group_by.len() as u64);
            for &g in group_by {
                h.u64(g as u64);
            }
            h.u64(aggs.len() as u64);
            for agg in aggs {
                h.u64(agg_digest(agg));
            }
        }
        Operator::Udf { name, output } => {
            h.byte(7);
            h.str(name);
            h.u64(schema_digest(output));
        }
        Operator::Sort { keys } => {
            h.byte(8);
            h.u64(keys.len() as u64);
            for &(k, desc) in keys {
                h.u64(k as u64);
                h.byte(desc as u8);
            }
        }
        Operator::Limit { n } => {
            h.byte(9);
            h.u64(*n);
        }
    }
    h.u64(inputs.len() as u64);
    for &i in inputs {
        h.u64(i);
    }
    h.finish()
}

fn schema_digest(schema: &Schema) -> u64 {
    let mut h = Fnv::new();
    for f in schema.fields() {
        h.str(&f.name);
        h.str(&f.ty.to_string());
    }
    h.finish()
}

fn agg_digest(agg: &AggExpr) -> u64 {
    let mut h = Fnv::new();
    h.str(&agg.func.to_string());
    h.str(&agg.name);
    match &agg.input {
        Some(e) => h.u64(expr_digest(e)),
        None => h.byte(0),
    }
    h.finish()
}

/// Canonical digest of a scalar expression.
pub fn expr_digest(e: &Expr) -> u64 {
    let mut h = Fnv::new();
    digest_expr_into(e, &mut h);
    h.finish()
}

fn digest_expr_into(e: &Expr, h: &mut Fnv) {
    match e {
        Expr::Column(i) => {
            h.byte(1);
            h.u64(*i as u64);
        }
        Expr::Literal(v) => {
            h.byte(2);
            digest_value(v, h);
        }
        Expr::FieldGet { input, key } => {
            h.byte(3);
            h.str(key);
            digest_expr_into(input, h);
        }
        Expr::Cast { input, ty } => {
            h.byte(4);
            h.str(&ty.to_string());
            digest_expr_into(input, h);
        }
        Expr::Unary { op, input } => {
            h.byte(5);
            h.str(&op.to_string());
            digest_expr_into(input, h);
        }
        Expr::Binary { op, left, right } => {
            let ld = expr_digest(left);
            let rd = expr_digest(right);
            if op.commutative() && *op != BinOp::And && *op != BinOp::Or {
                // Sort operand digests for symmetric ops; AND/OR handled as
                // n-ary multisets below for associativity as well.
                h.byte(6);
                h.str(&op.to_string());
                let (a, b) = if ld <= rd { (ld, rd) } else { (rd, ld) };
                h.u64(a);
                h.u64(b);
            } else if matches!(op, BinOp::And | BinOp::Or) {
                h.byte(7);
                h.str(&op.to_string());
                let mut ds = flatten_assoc(e, *op);
                ds.sort_unstable();
                h.u64(ds.len() as u64);
                for d in ds {
                    h.u64(d);
                }
            } else if let Some(mirror) = op.mirrored() {
                // Orient comparisons so the smaller digest is on the left.
                h.byte(8);
                if ld <= rd {
                    h.str(&op.to_string());
                    h.u64(ld);
                    h.u64(rd);
                } else {
                    h.str(&mirror.to_string());
                    h.u64(rd);
                    h.u64(ld);
                }
            } else {
                h.byte(9);
                h.str(&op.to_string());
                h.u64(ld);
                h.u64(rd);
            }
        }
        Expr::Func { name, args } => {
            h.byte(10);
            h.str(name);
            h.u64(args.len() as u64);
            for a in args {
                digest_expr_into(a, h);
            }
        }
    }
}

fn flatten_assoc(e: &Expr, op: BinOp) -> Vec<u64> {
    match e {
        Expr::Binary { op: o, left, right } if *o == op => {
            let mut ds = flatten_assoc(left, op);
            ds.extend(flatten_assoc(right, op));
            ds
        }
        other => vec![expr_digest(other)],
    }
}

fn digest_value(v: &Value, h: &mut Fnv) {
    match v {
        Value::Null => h.byte(0),
        Value::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Value::Int(i) => {
            h.byte(2);
            h.u64(*i as u64);
        }
        Value::Float(f) => {
            h.byte(3);
            // Normalize like Value's Hash: ints and equal floats must match.
            h.u64(if *f == 0.0 { 0 } else { f.to_bits() });
        }
        Value::Str(s) => {
            h.byte(4);
            h.str(s);
        }
        Value::Array(items) => {
            h.byte(5);
            h.u64(items.len() as u64);
            for item in items {
                digest_value(item, h);
            }
        }
        Value::Object(fields) => {
            h.byte(6);
            h.u64(fields.len() as u64);
            for (k, val) in fields {
                h.str(k);
                digest_value(val, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operator;
    use crate::plan::PlanBuilder;
    use miso_data::DataType;

    fn scan_filter(pred: Expr) -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![
                        ("a".into(), Expr::col(0).get("a").cast(DataType::Int)),
                        ("b".into(), Expr::col(0).get("b").cast(DataType::Int)),
                    ],
                },
                vec![scan],
            )
            .unwrap();
        let f = b
            .add(Operator::Filter { predicate: pred }, vec![proj])
            .unwrap();
        b.finish(f).unwrap()
    }

    #[test]
    fn fnv_hasher_is_eq_consistent_and_stable() {
        use miso_data::Value;
        // Int/Float that compare equal must hash equal (Value's contract,
        // preserved through any Hasher).
        assert_eq!(
            fnv1a_hash_one(&Value::Int(3)),
            fnv1a_hash_one(&Value::Float(3.0))
        );
        assert_eq!(
            fnv1a_hash_one(&Value::Float(0.0)),
            fnv1a_hash_one(&Value::Float(-0.0))
        );
        assert_ne!(
            fnv1a_hash_one(&Value::str("a")),
            fnv1a_hash_one(&Value::str("b"))
        );
        // Deterministic: two hashers agree (no per-instance seed).
        assert_eq!(fnv1a_hash_one("key"), fnv1a_hash_one("key"));
        // Raw byte stream matches the module's own FNV fold.
        use std::hash::Hasher as _;
        let mut h = FnvHasher::default();
        h.write(b"abc");
        let mut f = Fnv::new();
        f.bytes(b"abc");
        assert_eq!(h.finish(), f.finish());
    }

    #[test]
    fn identical_plans_identical_fingerprints() {
        let p1 = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        let p2 = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        assert_eq!(fingerprint_plan(&p1), fingerprint_plan(&p2));
    }

    #[test]
    fn different_predicates_differ() {
        let p1 = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        let p2 = scan_filter(Expr::col(0).eq(Expr::lit(2i64)));
        assert_ne!(fingerprint_plan(&p1), fingerprint_plan(&p2));
    }

    #[test]
    fn conjunct_order_is_canonical() {
        let a = Expr::col(0).eq(Expr::lit(1i64));
        let b = Expr::col(1).eq(Expr::lit(2i64));
        let p1 = scan_filter(a.clone().and(b.clone()));
        let p2 = scan_filter(b.and(a));
        assert_eq!(fingerprint_plan(&p1), fingerprint_plan(&p2));
    }

    #[test]
    fn and_is_associative() {
        let a = Expr::col(0).eq(Expr::lit(1i64));
        let b = Expr::col(1).eq(Expr::lit(2i64));
        let c = Expr::col(0).eq(Expr::lit(3i64));
        let left = a.clone().and(b.clone()).and(c.clone());
        let right = a.and(b.and(c));
        assert_eq!(expr_digest(&left), expr_digest(&right));
    }

    #[test]
    fn comparison_orientation_is_canonical() {
        let lt = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::lit(5i64)),
        };
        let gt = Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(Expr::lit(5i64)),
            right: Box::new(Expr::col(0)),
        };
        assert_eq!(expr_digest(&lt), expr_digest(&gt));
        // but x<5 differs from x>5
        let gt2 = Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::lit(5i64)),
        };
        assert_ne!(expr_digest(&lt), expr_digest(&gt2));
    }

    #[test]
    fn commutative_arithmetic_is_canonical() {
        let ab = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(1)),
        };
        let ba = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(Expr::col(1)),
            right: Box::new(Expr::col(0)),
        };
        assert_eq!(expr_digest(&ab), expr_digest(&ba));
        let sub_ab = Expr::Binary {
            op: BinOp::Sub,
            left: Box::new(Expr::col(0)),
            right: Box::new(Expr::col(1)),
        };
        let sub_ba = Expr::Binary {
            op: BinOp::Sub,
            left: Box::new(Expr::col(1)),
            right: Box::new(Expr::col(0)),
        };
        assert_ne!(expr_digest(&sub_ab), expr_digest(&sub_ba));
    }

    #[test]
    fn subtree_fingerprints_are_consistent_with_extraction() {
        let p = scan_filter(Expr::col(0).eq(Expr::lit(7i64)));
        let fps = fingerprint_all(&p);
        let proj_id = NodeId(1);
        let sub = p.subplan(proj_id);
        assert_eq!(fps[&proj_id], fingerprint_plan(&sub));
    }

    #[test]
    fn view_names_are_stable() {
        let p = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        let name = fingerprint_plan(&p).view_name();
        assert!(name.starts_with("v_"));
        assert_eq!(name.len(), 2 + 16);
        assert_eq!(name, fingerprint_plan(&p).view_name());
    }

    #[test]
    fn scan_view_fingerprint_is_its_defining_fingerprint() {
        // Compositionality: replacing a subtree with its view leaves the
        // enclosing plan's fingerprint unchanged.
        let p = scan_filter(Expr::col(0).eq(Expr::lit(9i64)));
        let before = fingerprint_plan(&p);
        let sub_fp = fingerprint_subtree(&p, NodeId(2));
        let rewritten = p.replace_with_view(NodeId(2), &sub_fp.view_name()).unwrap();
        assert_eq!(fingerprint_plan(&rewritten), before);
        assert_eq!(fingerprint_subtree(&rewritten, NodeId(0)), sub_fp);
    }

    #[test]
    fn non_canonical_view_names_still_hash() {
        let mut b = PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "etl_twitter".into(),
                    schema: miso_data::Schema::new(vec![miso_data::Field::new("a", DataType::Int)]),
                },
                vec![],
            )
            .unwrap();
        let p = b.finish(sv).unwrap();
        let fp1 = fingerprint_plan(&p);
        assert_ne!(fp1.0, 0);
        assert_eq!(parse_view_fingerprint("etl_twitter"), None);
        assert_eq!(parse_view_fingerprint("v_00000000000000ff"), Some(255));
        assert_eq!(parse_view_fingerprint("v_short"), None);
    }

    #[test]
    fn scan_view_identity_is_transitive() {
        // Replacing a subtree by its view, where the view name embeds the
        // subtree fingerprint, yields a plan whose fingerprint is a function
        // of the same semantics regardless of which query produced the view.
        let p1 = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        let p2 = scan_filter(Expr::col(0).eq(Expr::lit(1i64)));
        let fp1 = fingerprint_subtree(&p1, NodeId(1));
        let r1 = p1.replace_with_view(NodeId(1), &fp1.view_name()).unwrap();
        let fp2 = fingerprint_subtree(&p2, NodeId(1));
        let r2 = p2.replace_with_view(NodeId(1), &fp2.view_name()).unwrap();
        assert_eq!(fingerprint_plan(&r1), fingerprint_plan(&r2));
    }
}
