//! Property test: `rows → ColBatch → rows` is an identity for arbitrary
//! value matrices, every `Value` variant included (NULLs, NaN, ±0.0,
//! nested containers, type-clashing columns).
//!
//! Gated behind the `extern-deps` marker feature like the criterion
//! benches: the sanctioned offline crate set has no `proptest`, so the
//! default build compiles this file to nothing. Enable with
//! `cargo test -p miso-data --features extern-deps` after adding
//! `proptest` as a local dev-dependency. The always-on unit tests in
//! `src/batch.rs` cover the same property over a hand-built matrix.

#[cfg(feature = "extern-deps")]
mod real {
    use miso_data::{ColBatch, Row, Value};
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            Just(Value::Float(f64::NAN)),
            Just(Value::Float(-0.0)),
            ".{0,12}".prop_map(Value::str),
        ];
        leaf.prop_recursive(2, 8, 4, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                prop::collection::vec(("[a-c]{1,2}", inner), 0..4)
                    .prop_map(|fields| { Value::object(fields.into_iter().collect()) }),
            ]
        })
    }

    proptest! {
        #[test]
        fn pivot_round_trip_is_identity(
            (arity, rows) in (0usize..5).prop_flat_map(|arity| {
                (
                    Just(arity),
                    prop::collection::vec(
                        prop::collection::vec(arb_value(), arity..=arity),
                        0..64,
                    ),
                )
            })
        ) {
            let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
            let batch = ColBatch::from_rows(&rows).expect("uniform arity pivots");
            // Bit-level identity: Value's PartialEq treats NaN as equal and
            // ±0.0 as equal, so compare serialized debug forms too.
            prop_assert_eq!(batch.len(), rows.len());
            let back = batch.clone().into_rows();
            prop_assert_eq!(format!("{:?}", &back), format!("{:?}", &rows));
            prop_assert_eq!(back, rows.clone());
            prop_assert_eq!(batch.to_rows(), rows);
        }
    }
}
