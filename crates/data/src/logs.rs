//! Synthetic social-media log generators.
//!
//! The paper's evaluation uses a 1 TB Twitter stream, a 1 TB Foursquare
//! stream, and a 12 GB Landmarks data set, with the **user id shared across
//! Twitter/Foursquare** and the **venue (check-in location) shared across
//! Foursquare/Landmarks**. Neither stream is available, so we generate
//! deterministic synthetic equivalents that preserve the properties the
//! workload exploits:
//!
//! * the join graph above (both cross-log keys exist and are selective);
//! * skewed popularity (Zipf users, venues, and topics) so predicates have
//!   widely varying selectivities across query versions;
//! * text-bearing records with hashtags/categories that the workload's
//!   marketing queries filter on;
//! * JSON-line encoding, exercised by the HV scan's SerDe path.
//!
//! Sizes are scaled down (MBs instead of TBs); the store cost models scale
//! charged bytes back to paper magnitudes (see `miso-hv`/`miso-dw`).

use crate::json::to_json;
use crate::value::Value;
use miso_common::rng::{DetRng, ZipfSampler};
use miso_common::ByteSize;

/// Identifies one of the three generated data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogKind {
    /// Tweet stream (user-keyed).
    Twitter,
    /// Check-in stream (user- and venue-keyed).
    Foursquare,
    /// Static venue/geography reference data (venue-keyed).
    Landmarks,
}

impl LogKind {
    /// The HDFS-style base name used by the stores and the query language.
    pub fn table_name(&self) -> &'static str {
        match self {
            LogKind::Twitter => "twitter",
            LogKind::Foursquare => "foursquare",
            LogKind::Landmarks => "landmarks",
        }
    }

    /// The inverse of [`LogKind::table_name`] (used when routing a
    /// [`crate::Delta`] carrying only the table name).
    pub fn from_table_name(name: &str) -> Option<LogKind> {
        match name {
            "twitter" => Some(LogKind::Twitter),
            "foursquare" => Some(LogKind::Foursquare),
            "landmarks" => Some(LogKind::Landmarks),
            _ => None,
        }
    }
}

/// Generation parameters for the full corpus.
#[derive(Debug, Clone)]
pub struct LogsConfig {
    /// Number of distinct users (shared by Twitter and Foursquare).
    pub users: u64,
    /// Number of distinct venues (shared by Foursquare and Landmarks).
    pub venues: u64,
    /// Tweet record count.
    pub tweets: usize,
    /// Check-in record count.
    pub checkins: usize,
    /// Landmark record count (≤ `venues`; remaining venues are "unlisted").
    pub landmarks: usize,
    /// Master seed; all three logs derive independent streams from it.
    pub seed: u64,
}

impl LogsConfig {
    /// A tiny corpus for unit tests (sub-second generation).
    pub fn tiny() -> Self {
        LogsConfig {
            users: 200,
            venues: 80,
            tweets: 1_200,
            checkins: 800,
            landmarks: 64,
            seed: 0xC0FFEE,
        }
    }

    /// The default experiment corpus: big enough for meaningful
    /// selectivities and view sizes, small enough to run every figure
    /// quickly.
    pub fn experiment() -> Self {
        LogsConfig {
            users: 4_000,
            venues: 1_000,
            tweets: 40_000,
            checkins: 24_000,
            landmarks: 900,
            seed: 0x5EED_2014,
        }
    }
}

/// One generated log: JSON text lines plus its total byte size.
#[derive(Debug, Clone)]
pub struct LogFile {
    /// Which data set this is.
    pub kind: LogKind,
    /// One JSON document per line.
    pub lines: Vec<String>,
    /// Total size (sum of line lengths + newlines).
    pub size: ByteSize,
}

impl LogFile {
    fn from_lines(kind: LogKind, lines: Vec<String>) -> Self {
        let bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
        LogFile {
            kind,
            lines,
            size: ByteSize::from_bytes(bytes),
        }
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True iff the log has no records.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// The complete generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Tweet log.
    pub twitter: LogFile,
    /// Check-in log.
    pub foursquare: LogFile,
    /// Landmarks reference data.
    pub landmarks: LogFile,
}

impl Corpus {
    /// Generates the corpus deterministically from `cfg`.
    pub fn generate(cfg: &LogsConfig) -> Corpus {
        let root = DetRng::new(cfg.seed);
        Corpus {
            twitter: generate_twitter(cfg, root.fork(1)),
            foursquare: generate_foursquare(cfg, root.fork(2)),
            landmarks: generate_landmarks(cfg, root.fork(3)),
        }
    }

    /// Iterates (kind, file) pairs.
    pub fn files(&self) -> [&LogFile; 3] {
        [&self.twitter, &self.foursquare, &self.landmarks]
    }

    /// Total corpus size.
    pub fn total_size(&self) -> ByteSize {
        self.twitter.size + self.foursquare.size + self.landmarks.size
    }
}

/// Generates an **append batch** for a streaming log (the paper's §6 notes
/// that HDFS updates are append-only). Batch `b` of size `count` is
/// deterministic in `(cfg.seed, kind, b)` and carries record ids disjoint
/// from the base corpus and from other batches.
pub fn generate_delta(cfg: &LogsConfig, kind: LogKind, batch: u64, count: usize) -> Vec<String> {
    let root = DetRng::new(cfg.seed ^ 0xDE17A);
    match kind {
        LogKind::Twitter => {
            generate_twitter_batch(
                cfg,
                root.fork(batch * 4 + 1),
                cfg.tweets + batch as usize * count,
                count,
            )
            .lines
        }
        LogKind::Foursquare => {
            generate_foursquare_batch(
                cfg,
                root.fork(batch * 4 + 2),
                cfg.checkins + batch as usize * count,
                count,
            )
            .lines
        }
        // Landmarks is static reference data; an appended batch models newly
        // listed venues beyond the base id range.
        LogKind::Landmarks => {
            let mut extended = cfg.clone();
            extended.landmarks = (cfg.landmarks + count).min(cfg.venues as usize);
            let full = generate_landmarks(&extended, root.fork(batch * 4 + 3));
            full.lines[cfg.landmarks.min(full.lines.len())..].to_vec()
        }
    }
}

/// Marketing-relevant topic vocabulary: queries filter on these hashtags.
pub const TOPICS: &[&str] = &[
    "coffee",
    "pizza",
    "sushi",
    "burgers",
    "brunch",
    "vegan",
    "bbq",
    "tacos",
    "ramen",
    "dessert",
    "cocktails",
    "beer",
    "wine",
    "breakfast",
    "seafood",
    "steak",
];

/// Venue categories used by Landmarks and filtered by the workload.
pub const CATEGORIES: &[&str] = &[
    "restaurant",
    "cafe",
    "bar",
    "museum",
    "park",
    "theater",
    "stadium",
    "hotel",
    "mall",
    "landmark",
];

/// Cities shared by all three logs (geography join/filter dimension).
pub const CITIES: &[&str] = &[
    "san_francisco",
    "new_york",
    "austin",
    "seattle",
    "chicago",
    "boston",
    "portland",
    "denver",
    "miami",
    "los_angeles",
];

const LANGS: &[&str] = &["en", "es", "pt", "ja", "de", "fr"];
const WORDS: &[&str] = &[
    "loving", "the", "new", "place", "downtown", "amazing", "terrible", "queue", "service",
    "tonight", "friends", "best", "worst", "ever", "grand", "opening", "happy", "hour", "deal",
    "try", "again", "never", "crowded", "quiet", "cozy", "fresh", "local", "spot", "hidden", "gem",
];

/// Timestamps span 90 synthetic days, seconds resolution.
const TIME_SPAN_SECS: u64 = 90 * 24 * 3600;

fn generate_twitter(cfg: &LogsConfig, rng: DetRng) -> LogFile {
    generate_twitter_batch(cfg, rng, 0, cfg.tweets)
}

fn generate_twitter_batch(
    cfg: &LogsConfig,
    mut rng: DetRng,
    id_offset: usize,
    count: usize,
) -> LogFile {
    let users = ZipfSampler::new(cfg.users as usize, 0.35);
    let retweets = ZipfSampler::new(1000, 1.3);
    let followers = ZipfSampler::new(100_000, 1.2);
    let mut lines = Vec::with_capacity(count);
    for i in id_offset..id_offset + count {
        let user = users.sample(&mut rng) as i64;
        let n_tags = rng.range_inclusive(0, 3);
        let mut tags = Vec::new();
        for _ in 0..n_tags {
            tags.push(Value::str(*rng.pick(TOPICS)));
        }
        let n_words = rng.range_inclusive(4, 14);
        let mut text = String::new();
        for w in 0..n_words {
            if w > 0 {
                text.push(' ');
            }
            text.push_str(rng.pick(WORDS) as &str);
        }
        // Tweets often mention the topic in prose too, so text-search
        // predicates (`contains(t.text, 'coffee')`) have real selectivity.
        if rng.chance(0.35) {
            text.push(' ');
            text.push_str(rng.pick(TOPICS) as &str);
        }
        let record = Value::object(vec![
            ("tweet_id".into(), Value::Int(i as i64)),
            ("user_id".into(), Value::Int(user)),
            ("ts".into(), Value::Int(rng.below(TIME_SPAN_SECS) as i64)),
            ("text".into(), Value::Str(text)),
            ("hashtags".into(), Value::Array(tags)),
            (
                "retweets".into(),
                Value::Int(retweets.sample(&mut rng) as i64),
            ),
            (
                "followers".into(),
                Value::Int(followers.sample(&mut rng) as i64),
            ),
            ("lang".into(), Value::str(*rng.pick(LANGS))),
            ("city".into(), Value::str(*rng.pick(CITIES))),
            (
                "sentiment".into(),
                Value::Float((rng.f64() * 2.0 - 1.0 + rng.f64() * 0.2).clamp(-1.0, 1.0)),
            ),
        ]);
        lines.push(to_json(&record));
    }
    LogFile::from_lines(LogKind::Twitter, lines)
}

fn generate_foursquare(cfg: &LogsConfig, rng: DetRng) -> LogFile {
    generate_foursquare_batch(cfg, rng, 0, cfg.checkins)
}

fn generate_foursquare_batch(
    cfg: &LogsConfig,
    mut rng: DetRng,
    id_offset: usize,
    count: usize,
) -> LogFile {
    let users = ZipfSampler::new(cfg.users as usize, 0.35);
    let venues = ZipfSampler::new(cfg.venues as usize, 0.7);
    let likes = ZipfSampler::new(200, 1.4);
    let mut lines = Vec::with_capacity(count);
    for i in id_offset..id_offset + count {
        let user = users.sample(&mut rng) as i64;
        let venue = venues.sample(&mut rng) as i64;
        let record = Value::object(vec![
            ("checkin_id".into(), Value::Int(i as i64)),
            ("user_id".into(), Value::Int(user)),
            ("venue_id".into(), Value::Int(venue)),
            ("ts".into(), Value::Int(rng.below(TIME_SPAN_SECS) as i64)),
            ("likes".into(), Value::Int(likes.sample(&mut rng) as i64)),
            ("with_friends".into(), Value::Bool(rng.chance(0.35))),
            ("city".into(), Value::str(*rng.pick(CITIES))),
        ]);
        lines.push(to_json(&record));
    }
    LogFile::from_lines(LogKind::Foursquare, lines)
}

fn generate_landmarks(cfg: &LogsConfig, mut rng: DetRng) -> LogFile {
    let count = cfg.landmarks.min(cfg.venues as usize);
    let mut lines = Vec::with_capacity(count);
    for venue in 0..count {
        let record = Value::object(vec![
            ("venue_id".into(), Value::Int(venue as i64)),
            (
                "name".into(),
                Value::Str(format!("{}_{}", rng.pick(WORDS), venue)),
            ),
            ("category".into(), Value::str(*rng.pick(CATEGORIES))),
            ("city".into(), Value::str(*rng.pick(CITIES))),
            ("lat".into(), Value::Float(25.0 + rng.f64() * 24.0)),
            ("lon".into(), Value::Float(-124.0 + rng.f64() * 54.0)),
            (
                "rating".into(),
                Value::Float((rng.f64() * 4.0 + 1.0 * rng.f64()).clamp(0.5, 5.0)),
            ),
            (
                "price_tier".into(),
                Value::Int(rng.range_inclusive(1, 4) as i64),
            ),
        ]);
        lines.push(to_json(&record));
    }
    LogFile::from_lines(LogKind::Landmarks, lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&LogsConfig::tiny());
        let b = Corpus::generate(&LogsConfig::tiny());
        assert_eq!(a.twitter.lines, b.twitter.lines);
        assert_eq!(a.foursquare.lines, b.foursquare.lines);
        assert_eq!(a.landmarks.lines, b.landmarks.lines);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = LogsConfig::tiny();
        let a = Corpus::generate(&cfg);
        cfg.seed += 1;
        let b = Corpus::generate(&cfg);
        assert_ne!(a.twitter.lines[0], b.twitter.lines[0]);
    }

    #[test]
    fn counts_match_config() {
        let cfg = LogsConfig::tiny();
        let c = Corpus::generate(&cfg);
        assert_eq!(c.twitter.len(), cfg.tweets);
        assert_eq!(c.foursquare.len(), cfg.checkins);
        assert_eq!(c.landmarks.len(), cfg.landmarks);
    }

    #[test]
    fn every_line_is_valid_json_with_expected_keys() {
        let c = Corpus::generate(&LogsConfig::tiny());
        for line in c.twitter.lines.iter().take(50) {
            let v = parse_json(line).unwrap();
            assert!(v.get_field("user_id").is_some());
            assert!(v.get_field("hashtags").is_some());
        }
        for line in c.foursquare.lines.iter().take(50) {
            let v = parse_json(line).unwrap();
            assert!(v.get_field("user_id").is_some());
            assert!(v.get_field("venue_id").is_some());
        }
        for line in c.landmarks.lines.iter().take(50) {
            let v = parse_json(line).unwrap();
            assert!(v.get_field("venue_id").is_some());
            assert!(v.get_field("category").is_some());
        }
    }

    #[test]
    fn join_keys_are_shared() {
        let cfg = LogsConfig::tiny();
        let c = Corpus::generate(&cfg);
        // Every foursquare user id must lie in the same id space as twitter.
        for line in c.foursquare.lines.iter().take(100) {
            let v = parse_json(line).unwrap();
            let uid = v.get_field("user_id").unwrap().as_i64().unwrap();
            assert!((0..cfg.users as i64).contains(&uid));
            let vid = v.get_field("venue_id").unwrap().as_i64().unwrap();
            assert!((0..cfg.venues as i64).contains(&vid));
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let c = Corpus::generate(&LogsConfig::tiny());
        let mut user0 = 0usize;
        for line in &c.twitter.lines {
            let v = parse_json(line).unwrap();
            if v.get_field("user_id").unwrap() == &Value::Int(0) {
                user0 += 1;
            }
        }
        // Zipf rank 0 must appear far more than the uniform expectation.
        let uniform = c.twitter.len() / 200;
        assert!(user0 > uniform * 3, "user0={user0}, uniform={uniform}");
    }

    #[test]
    fn size_accounts_for_newlines() {
        let c = Corpus::generate(&LogsConfig::tiny());
        let expected: u64 = c.twitter.lines.iter().map(|l| l.len() as u64 + 1).sum();
        assert_eq!(c.twitter.size.as_bytes(), expected);
        assert_eq!(
            c.total_size(),
            c.twitter.size + c.foursquare.size + c.landmarks.size
        );
    }
}
