//! Column and relation statistics.
//!
//! The multistore optimizer needs cardinality and byte-size estimates to cost
//! split points ("the primary challenge ... is determining the point in an
//! execution plan at which the data size of a query's working set is small
//! enough"). We keep the statistics machinery deliberately simple — row
//! count, average row width, and per-column distinct-count/min/max gathered
//! by full inspection at materialization time (our relations are small; a
//! production system would sample or sketch).

use crate::value::{Row, Value};
use miso_common::ByteSize;
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub distinct: u64,
    /// Number of NULLs.
    pub nulls: u64,
    /// Minimum non-null value, if any rows.
    pub min: Option<Value>,
    /// Maximum non-null value, if any rows.
    pub max: Option<Value>,
}

impl ColumnStats {
    fn empty() -> Self {
        ColumnStats {
            distinct: 0,
            nulls: 0,
            min: None,
            max: None,
        }
    }
}

/// Statistics for a relation (a materialized view, table, or base log).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Row count.
    pub rows: u64,
    /// Total approximate serialized size.
    pub bytes: ByteSize,
    /// Per-column statistics, positionally aligned with the schema.
    pub columns: Vec<ColumnStats>,
}

impl RelationStats {
    /// Statistics of an empty relation with `arity` columns.
    pub fn empty(arity: usize) -> Self {
        RelationStats {
            rows: 0,
            bytes: ByteSize::ZERO,
            columns: vec![ColumnStats::empty(); arity],
        }
    }

    /// Computes exact statistics by scanning `rows`.
    pub fn compute(rows: &[Row], arity: usize) -> Self {
        let mut stats = RelationStats::empty(arity);
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
        for row in rows {
            stats.rows += 1;
            stats.bytes += ByteSize::from_bytes(row.approx_bytes());
            for (i, v) in row.values().iter().enumerate().take(arity) {
                let col = &mut stats.columns[i];
                if v.is_null() {
                    col.nulls += 1;
                    continue;
                }
                distinct[i].insert(v);
                match &col.min {
                    None => col.min = Some(v.clone()),
                    Some(m) if v < m => col.min = Some(v.clone()),
                    _ => {}
                }
                match &col.max {
                    None => col.max = Some(v.clone()),
                    Some(m) if v > m => col.max = Some(v.clone()),
                    _ => {}
                }
            }
        }
        for (i, set) in distinct.into_iter().enumerate() {
            stats.columns[i].distinct = set.len() as u64;
        }
        stats
    }

    /// Average row width in bytes (0 for empty relations).
    pub fn avg_row_bytes(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.bytes.as_bytes() as f64 / self.rows as f64
        }
    }

    /// Selectivity estimate for an equality predicate on column `col`
    /// (classic `1/NDV`); 1.0 when statistics are absent.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.columns.get(col) {
            Some(c) if c.distinct > 0 => 1.0 / c.distinct as f64,
            _ => 1.0,
        }
    }

    /// Selectivity estimate for a range predicate on a numeric column using
    /// the uniform assumption over `[min, max]`; falls back to 1/3 (the
    /// textbook default) when bounds are unusable.
    pub fn range_selectivity(&self, col: usize, lo: Option<f64>, hi: Option<f64>) -> f64 {
        const DEFAULT: f64 = 1.0 / 3.0;
        let Some(c) = self.columns.get(col) else {
            return DEFAULT;
        };
        let (Some(min), Some(max)) = (
            c.min.as_ref().and_then(Value::as_f64),
            c.max.as_ref().and_then(Value::as_f64),
        ) else {
            return DEFAULT;
        };
        if max <= min {
            return DEFAULT;
        }
        let lo = lo.unwrap_or(min).max(min);
        let hi = hi.unwrap_or(max).min(max);
        ((hi - lo) / (max - min)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            Row::new(vec![Value::Int(1), Value::str("a")]),
            Row::new(vec![Value::Int(2), Value::str("b")]),
            Row::new(vec![Value::Int(2), Value::Null]),
            Row::new(vec![Value::Int(5), Value::str("a")]),
        ]
    }

    #[test]
    fn compute_counts_and_bounds() {
        let s = RelationStats::compute(&rows(), 2);
        assert_eq!(s.rows, 4);
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].nulls, 0);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(5)));
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.columns[1].nulls, 1);
    }

    #[test]
    fn empty_relation() {
        let s = RelationStats::compute(&[], 3);
        assert_eq!(s.rows, 0);
        assert_eq!(s.avg_row_bytes(), 0.0);
        assert_eq!(s.columns.len(), 3);
        assert_eq!(s.columns[0].min, None);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let s = RelationStats::compute(&rows(), 2);
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(RelationStats::empty(1).eq_selectivity(0), 1.0);
    }

    #[test]
    fn range_selectivity_uniform() {
        let s = RelationStats::compute(&rows(), 2);
        // column 0 spans [1, 5]; range [2, 4] covers half.
        let sel = s.range_selectivity(0, Some(2.0), Some(4.0));
        assert!((sel - 0.5).abs() < 1e-12);
        // open-ended ranges clamp to bounds
        assert!((s.range_selectivity(0, None, None) - 1.0).abs() < 1e-12);
        // non-numeric column falls back
        assert!((s.range_selectivity(1, Some(0.0), Some(1.0)) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_accumulate() {
        let r = rows();
        let s = RelationStats::compute(&r, 2);
        let expected: u64 = r.iter().map(Row::approx_bytes).sum();
        assert_eq!(s.bytes.as_bytes(), expected);
        assert!(s.avg_row_bytes() > 0.0);
    }
}
