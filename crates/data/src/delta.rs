//! Append-only ingestion batches for the streaming-logs scenario.
//!
//! HDFS logs are append-only: new data arrives as a batch of JSON lines at
//! the end of an existing file, never as in-place updates. A [`Delta`]
//! captures one such batch — the target log plus its raw lines — and is the
//! unit the maintenance layer propagates through view definitions
//! (`miso-views`/`miso-exec`) instead of recomputing from the full base.
//!
//! Two parse paths mirror the execution engine's scan:
//!
//! * [`Delta::parse_rows`] — one single-column [`Row`] per well-formed JSON
//!   line, exactly what `ScanLog` produces (malformed lines are skipped and
//!   counted, same contract as the scan's `skipped_lines`);
//! * [`Delta::parse_columns`] — straight to a typed [`ColBatch`] through
//!   the columnar [`ColBuilder`]s, for column-eligible ingestion: named
//!   top-level fields are extracted per line without materializing the
//!   intermediate object rows.

use crate::batch::{ColBatch, ColBuilder};
use crate::json::parse_json;
use crate::logs::{generate_delta, LogKind, LogsConfig};
use crate::value::Row;
use miso_common::ByteSize;

/// One append-only batch of raw log lines bound for a single base log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Table name of the target log (e.g. `"twitter"`).
    pub log: String,
    /// One JSON document per line, exactly as they would land in HDFS.
    pub lines: Vec<String>,
}

impl Delta {
    /// Wraps raw lines as a delta for `log`.
    pub fn new(log: impl Into<String>, lines: Vec<String>) -> Delta {
        Delta {
            log: log.into(),
            lines,
        }
    }

    /// A deterministic synthetic batch from the log generators: batch `n`
    /// of `count` records for `kind`, disjoint from the base corpus and
    /// from every other batch number.
    pub fn generated(cfg: &LogsConfig, kind: LogKind, batch: u64, count: usize) -> Delta {
        Delta::new(kind.table_name(), generate_delta(cfg, kind, batch, count))
    }

    /// Number of raw lines in the batch.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Byte size charged for ingesting this batch (line bytes + newlines),
    /// matching how `LogFile` sizes the base corpus.
    pub fn size(&self) -> ByteSize {
        ByteSize::from_bytes(self.lines.iter().map(|l| l.len() as u64 + 1).sum())
    }

    /// Parses the batch the way `ScanLog` does: one single-column row per
    /// well-formed line. Returns the rows and the count of malformed lines
    /// skipped.
    pub fn parse_rows(&self) -> (Vec<Row>, usize) {
        let mut rows = Vec::with_capacity(self.lines.len());
        let mut skipped = 0usize;
        for line in &self.lines {
            match parse_json(line) {
                Ok(v) => rows.push(Row::new(vec![v])),
                Err(_) => skipped += 1,
            }
        }
        (rows, skipped)
    }

    /// Parses the batch straight into a typed columnar batch: one column
    /// per requested top-level field (absent fields become NULL cells).
    /// Returns the batch and the count of malformed lines skipped.
    pub fn parse_columns(&self, fields: &[&str]) -> (ColBatch, usize) {
        let mut builders: Vec<ColBuilder> = fields.iter().map(|_| ColBuilder::new()).collect();
        for b in &mut builders {
            b.reserve(self.lines.len());
        }
        let mut rows = 0usize;
        let mut skipped = 0usize;
        for line in &self.lines {
            let Ok(v) = parse_json(line) else {
                skipped += 1;
                continue;
            };
            rows += 1;
            for (field, b) in fields.iter().zip(&mut builders) {
                match v.get_field(field) {
                    Some(cell) => b.push_value(cell.clone()),
                    None => b.push_null(),
                }
            }
        }
        let columns = builders.into_iter().map(ColBuilder::finish).collect();
        (ColBatch::from_columns(columns, rows), skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::Cell;
    use crate::value::Value;

    #[test]
    fn generated_delta_parses_cleanly() {
        let cfg = LogsConfig::tiny();
        let d = Delta::generated(&cfg, LogKind::Twitter, 1, 50);
        assert_eq!(d.log, "twitter");
        assert_eq!(d.len(), 50);
        assert!(d.size().as_bytes() > 0);
        let (rows, skipped) = d.parse_rows();
        assert_eq!(rows.len(), 50);
        assert_eq!(skipped, 0);
        for row in &rows {
            assert_eq!(row.arity(), 1, "scan rows are single JSON records");
            assert!(matches!(row.values()[0], Value::Object(_)));
        }
        // Deterministic: same batch number reproduces the same lines.
        assert_eq!(d, Delta::generated(&cfg, LogKind::Twitter, 1, 50));
        // Distinct batch numbers produce distinct lines.
        assert_ne!(d, Delta::generated(&cfg, LogKind::Twitter, 2, 50));
    }

    #[test]
    fn malformed_lines_are_skipped_and_counted() {
        let d = Delta::new(
            "twitter",
            vec![
                r#"{"user_id": 1, "city": "austin"}"#.to_string(),
                "{not json".to_string(),
                r#"{"user_id": 2}"#.to_string(),
            ],
        );
        let (rows, skipped) = d.parse_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(skipped, 1);
        let (batch, col_skipped) = d.parse_columns(&["user_id", "city"]);
        assert_eq!(batch.len(), 2);
        assert_eq!(col_skipped, 1);
    }

    #[test]
    fn parse_columns_extracts_typed_fields() {
        let d = Delta::new(
            "twitter",
            vec![
                r#"{"user_id": 7, "city": "austin", "score": 0.5}"#.to_string(),
                r#"{"user_id": 8}"#.to_string(),
            ],
        );
        let (batch, skipped) = d.parse_columns(&["user_id", "city"]);
        assert_eq!(skipped, 0);
        assert_eq!(batch.arity(), 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.columns()[0].cell(0).as_i64(), Some(7));
        assert_eq!(batch.columns()[0].cell(1).as_i64(), Some(8));
        assert!(matches!(batch.columns()[1].cell(0), Cell::Str("austin")));
        assert!(batch.columns()[1].cell(1).is_null(), "absent field is NULL");
    }
}
