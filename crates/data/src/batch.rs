//! Typed columnar batches — the MonetDB/X100-style vectorized
//! representation the morsel engine runs on.
//!
//! A [`ColBatch`] holds one typed vector per column ([`Column`]) plus an
//! explicit row count, so empty-arity batches still know their length.
//! Typed columns (`Int`/`Float`/`Bool`/`Str`) carry a null bitmap
//! ([`Nulls`]); null slots hold a default payload (`0`, `0.0`, `false`,
//! `""`) and are masked out on read. Columns whose values mix types — or
//! hold arrays/objects — fall back to a [`Column::Mixed`] vector of boxed
//! [`Value`]s, so **every** row set pivots losslessly:
//! `rows → ColBatch → rows` is an identity (see the round-trip tests and
//! the extern-deps proptest in `tests/batch_prop.rs`).
//!
//! Reads go through [`Cell`], a borrowed scalar view that reproduces
//! `Value`'s cross-type equality, ordering and hashing (Int/Float compare
//! numerically, NaN is self-equal and sorts last, ±0.0 coincide) without
//! materializing a `Value`. The engine's columnar operators consume cells
//! for the generic path and reach into the typed vectors for the fast
//! paths.

use crate::value::{cmp_f64, Row, Value};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// Null bitmap: bit `i` set ⇒ slot `i` is NULL. An empty word vector means
/// "no nulls", so all-valid columns pay nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Nulls {
    words: Vec<u64>,
}

impl Nulls {
    /// A bitmap with no nulls set.
    pub fn none() -> Nulls {
        Nulls::default()
    }

    /// Is slot `i` null? Out-of-range bits read as valid.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Marks slot `i` null, growing the word vector as needed.
    pub fn set(&mut self, i: usize) {
        let word = i / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1u64 << (i % 64);
    }

    /// True iff any slot is null.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }
}

/// One typed column vector. Null slots in typed variants hold a default
/// payload and are masked by the bitmap; `Mixed` stores `Value`s verbatim
/// (including `Value::Null`) for columns that don't fit a single scalar
/// type.
#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    Int(Vec<i64>, Nulls),
    Float(Vec<f64>, Nulls),
    Bool(Vec<bool>, Nulls),
    Str(Vec<String>, Nulls),
    Mixed(Vec<Value>),
}

/// A borrowed scalar view of one slot. `Val` only ever carries the
/// container types (`Array`/`Object`); scalar `Value`s in a `Mixed` column
/// are unwrapped into the typed variants so every consumer handles one
/// shape per type.
#[derive(Clone, Copy, Debug)]
pub enum Cell<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(&'a str),
    Val(&'a Value),
}

impl<'a> Cell<'a> {
    /// Wraps a borrowed `Value`, unwrapping scalars.
    #[inline]
    pub fn of(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Bool(b) => Cell::Bool(*b),
            Value::Int(i) => Cell::Int(*i),
            Value::Float(f) => Cell::Float(*f),
            Value::Str(s) => Cell::Str(s),
            other => Cell::Val(other),
        }
    }

    /// True iff this is the NULL cell.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Owned `Value` (clones strings/containers).
    pub fn to_value(&self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Bool(b) => Value::Bool(*b),
            Cell::Int(i) => Value::Int(*i),
            Cell::Float(f) => Value::Float(*f),
            Cell::Str(s) => Value::Str((*s).to_string()),
            Cell::Val(v) => (*v).clone(),
        }
    }

    /// Mirror of [`Value::as_i64`]: Int only, no float coercion.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            Cell::Val(v) => v.as_i64(),
            _ => None,
        }
    }

    /// Mirror of [`Value::as_f64`].
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(*i as f64),
            Cell::Float(f) => Some(*f),
            Cell::Val(v) => v.as_f64(),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Bool(_) => 1,
            Cell::Int(_) | Cell::Float(_) => 2,
            Cell::Str(_) => 3,
            Cell::Val(v) => v.type_rank(),
        }
    }

    /// Total order identical to `Value::cmp` on the equivalent owned value.
    pub fn cmp_value(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Cell::Null, Value::Null) => Ordering::Equal,
            (Cell::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Cell::Int(a), Value::Int(b)) => a.cmp(b),
            (Cell::Int(a), Value::Float(b)) => cmp_f64(*a as f64, *b),
            (Cell::Float(a), Value::Int(b)) => cmp_f64(*a, *b as f64),
            (Cell::Float(a), Value::Float(b)) => cmp_f64(*a, *b),
            (Cell::Str(a), Value::Str(b)) => (*a).cmp(b.as_str()),
            (Cell::Val(v), o) => (*v).cmp(o),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }

    /// Equality identical to `Value::eq` on the equivalent owned value.
    #[inline]
    pub fn eq_value(&self, other: &Value) -> bool {
        self.cmp_value(other) == Ordering::Equal
    }

    /// Footprint charge, matching [`Value::approx_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Cell::Null | Cell::Bool(_) => 1,
            Cell::Int(_) | Cell::Float(_) => 8,
            Cell::Str(s) => 4 + s.len() as u64,
            Cell::Val(v) => v.approx_bytes(),
        }
    }
}

/// Hash stream identical to `Value::hash` on the equivalent owned value,
/// so cells can probe maps keyed by `Value` group/join keys.
impl Hash for Cell<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Cell::Null => 0u8.hash(state),
            Cell::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Cell::Int(i) => {
                2u8.hash(state);
                Value::float_bits(*i as f64).hash(state);
            }
            Cell::Float(f) => {
                2u8.hash(state);
                Value::float_bits(*f).hash(state);
            }
            Cell::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Cell::Val(v) => v.hash(state),
        }
    }
}

impl Column {
    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// True iff the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is slot `i` null?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int(_, n) | Column::Float(_, n) | Column::Bool(_, n) | Column::Str(_, n) => {
                n.is_null(i)
            }
            Column::Mixed(v) => v[i].is_null(),
        }
    }

    /// Borrowed scalar view of slot `i`.
    #[inline]
    pub fn cell(&self, i: usize) -> Cell<'_> {
        match self {
            Column::Int(v, n) => {
                if n.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Int(v[i])
                }
            }
            Column::Float(v, n) => {
                if n.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Float(v[i])
                }
            }
            Column::Bool(v, n) => {
                if n.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Bool(v[i])
                }
            }
            Column::Str(v, n) => {
                if n.is_null(i) {
                    Cell::Null
                } else {
                    Cell::Str(&v[i])
                }
            }
            Column::Mixed(v) => Cell::of(&v[i]),
        }
    }

    /// Owned `Value` of slot `i`.
    pub fn value(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }

    /// Copies the slots at `sel` (in order) into a new column.
    pub fn gather(&self, sel: &[u32]) -> Column {
        fn pick<T: Clone + Default>(v: &[T], n: &Nulls, sel: &[u32]) -> (Vec<T>, Nulls) {
            let mut out = Vec::with_capacity(sel.len());
            let mut nulls = Nulls::none();
            for (j, &i) in sel.iter().enumerate() {
                if n.is_null(i as usize) {
                    nulls.set(j);
                    out.push(T::default());
                } else {
                    out.push(v[i as usize].clone());
                }
            }
            (out, nulls)
        }
        match self {
            Column::Int(v, n) => {
                let (out, nulls) = pick(v, n, sel);
                Column::Int(out, nulls)
            }
            Column::Float(v, n) => {
                let (out, nulls) = pick(v, n, sel);
                Column::Float(out, nulls)
            }
            Column::Bool(v, n) => {
                let (out, nulls) = pick(v, n, sel);
                Column::Bool(out, nulls)
            }
            Column::Str(v, n) => {
                let (out, nulls) = pick(v, n, sel);
                Column::Str(out, nulls)
            }
            Column::Mixed(v) => Column::Mixed(sel.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }

    /// Copies the first `n` slots into a new column.
    pub fn head(&self, n: usize) -> Column {
        let n = n.min(self.len()) as u32;
        self.gather(&(0..n).collect::<Vec<u32>>())
    }

    /// Concatenates parts in order. Parts that classified differently
    /// (possible when producers chunk independently) degrade to `Mixed`.
    pub fn concat(mut parts: Vec<Column>) -> Column {
        if parts.len() == 1 {
            return parts.pop().expect("one part");
        }
        let total: usize = parts.iter().map(Column::len).sum();
        let mut b = ColBuilder::new();
        for part in parts {
            b.reserve(total.saturating_sub(b.len()));
            match part {
                Column::Int(v, n) => {
                    for (i, x) in v.into_iter().enumerate() {
                        if n.is_null(i) {
                            b.push_null();
                        } else {
                            b.push_i64(x);
                        }
                    }
                }
                Column::Float(v, n) => {
                    for (i, x) in v.into_iter().enumerate() {
                        if n.is_null(i) {
                            b.push_null();
                        } else {
                            b.push_f64(x);
                        }
                    }
                }
                Column::Bool(v, n) => {
                    for (i, x) in v.into_iter().enumerate() {
                        if n.is_null(i) {
                            b.push_null();
                        } else {
                            b.push_bool(x);
                        }
                    }
                }
                Column::Str(v, n) => {
                    for (i, x) in v.into_iter().enumerate() {
                        if n.is_null(i) {
                            b.push_null();
                        } else {
                            b.push_str(x);
                        }
                    }
                }
                Column::Mixed(v) => {
                    for x in v {
                        b.push_value(x);
                    }
                }
            }
        }
        b.finish()
    }
}

/// Incremental column builder. Starts untyped, commits to the variant of
/// the first non-null push, and degrades to `Mixed` on a type clash —
/// never lossy.
#[derive(Debug)]
pub enum ColBuilder {
    /// Only nulls pushed so far.
    Unknown(usize),
    Int(Vec<i64>, Nulls),
    Float(Vec<f64>, Nulls),
    Bool(Vec<bool>, Nulls),
    Str(Vec<String>, Nulls),
    Mixed(Vec<Value>),
}

impl Default for ColBuilder {
    fn default() -> Self {
        ColBuilder::new()
    }
}

impl ColBuilder {
    pub fn new() -> ColBuilder {
        ColBuilder::Unknown(0)
    }

    /// Slots pushed so far.
    pub fn len(&self) -> usize {
        match self {
            ColBuilder::Unknown(n) => *n,
            ColBuilder::Int(v, _) => v.len(),
            ColBuilder::Float(v, _) => v.len(),
            ColBuilder::Bool(v, _) => v.len(),
            ColBuilder::Str(v, _) => v.len(),
            ColBuilder::Mixed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for `extra` more slots.
    pub fn reserve(&mut self, extra: usize) {
        match self {
            ColBuilder::Unknown(_) => {}
            ColBuilder::Int(v, _) => v.reserve(extra),
            ColBuilder::Float(v, _) => v.reserve(extra),
            ColBuilder::Bool(v, _) => v.reserve(extra),
            ColBuilder::Str(v, _) => v.reserve(extra),
            ColBuilder::Mixed(v) => v.reserve(extra),
        }
    }

    /// Rewrites the accumulated prefix as boxed `Value`s (type clash).
    fn degrade(&mut self) -> &mut Vec<Value> {
        let values: Vec<Value> = match std::mem::replace(self, ColBuilder::Unknown(0)) {
            ColBuilder::Unknown(n) => vec![Value::Null; n],
            ColBuilder::Int(v, n) => materialize(v, n, Value::Int),
            ColBuilder::Float(v, n) => materialize(v, n, Value::Float),
            ColBuilder::Bool(v, n) => materialize(v, n, Value::Bool),
            ColBuilder::Str(v, n) => materialize(v, n, Value::Str),
            ColBuilder::Mixed(v) => v,
        };
        *self = ColBuilder::Mixed(values);
        match self {
            ColBuilder::Mixed(v) => v,
            _ => unreachable!("just assigned Mixed"),
        }
    }

    pub fn push_null(&mut self) {
        match self {
            ColBuilder::Unknown(n) => *n += 1,
            ColBuilder::Int(v, n) => {
                n.set(v.len());
                v.push(0);
            }
            ColBuilder::Float(v, n) => {
                n.set(v.len());
                v.push(0.0);
            }
            ColBuilder::Bool(v, n) => {
                n.set(v.len());
                v.push(false);
            }
            ColBuilder::Str(v, n) => {
                n.set(v.len());
                v.push(String::new());
            }
            ColBuilder::Mixed(v) => v.push(Value::Null),
        }
    }

    pub fn push_i64(&mut self, x: i64) {
        match self {
            ColBuilder::Unknown(n) => {
                let mut v = Vec::with_capacity(*n + 1);
                let mut nulls = Nulls::none();
                for i in 0..*n {
                    nulls.set(i);
                    v.push(0);
                }
                v.push(x);
                *self = ColBuilder::Int(v, nulls);
            }
            ColBuilder::Int(v, _) => v.push(x),
            _ => self.degrade().push(Value::Int(x)),
        }
    }

    pub fn push_f64(&mut self, x: f64) {
        match self {
            ColBuilder::Unknown(n) => {
                let mut v = Vec::with_capacity(*n + 1);
                let mut nulls = Nulls::none();
                for i in 0..*n {
                    nulls.set(i);
                    v.push(0.0);
                }
                v.push(x);
                *self = ColBuilder::Float(v, nulls);
            }
            ColBuilder::Float(v, _) => v.push(x),
            _ => self.degrade().push(Value::Float(x)),
        }
    }

    pub fn push_bool(&mut self, x: bool) {
        match self {
            ColBuilder::Unknown(n) => {
                let mut v = Vec::with_capacity(*n + 1);
                let mut nulls = Nulls::none();
                for i in 0..*n {
                    nulls.set(i);
                    v.push(false);
                }
                v.push(x);
                *self = ColBuilder::Bool(v, nulls);
            }
            ColBuilder::Bool(v, _) => v.push(x),
            _ => self.degrade().push(Value::Bool(x)),
        }
    }

    pub fn push_str(&mut self, x: String) {
        match self {
            ColBuilder::Unknown(n) => {
                let mut v = Vec::with_capacity(*n + 1);
                let mut nulls = Nulls::none();
                for i in 0..*n {
                    nulls.set(i);
                    v.push(String::new());
                }
                v.push(x);
                *self = ColBuilder::Str(v, nulls);
            }
            ColBuilder::Str(v, _) => v.push(x),
            _ => self.degrade().push(Value::Str(x)),
        }
    }

    /// Pushes any `Value`, classifying or degrading as needed.
    pub fn push_value(&mut self, x: Value) {
        match x {
            Value::Null => self.push_null(),
            Value::Int(i) => self.push_i64(i),
            Value::Float(f) => self.push_f64(f),
            Value::Bool(b) => self.push_bool(b),
            Value::Str(s) => self.push_str(s),
            other => self.degrade().push(other),
        }
    }

    pub fn finish(self) -> Column {
        match self {
            // All-null columns have no scalar type; store the nulls verbatim.
            ColBuilder::Unknown(n) => Column::Mixed(vec![Value::Null; n]),
            ColBuilder::Int(v, n) => Column::Int(v, n),
            ColBuilder::Float(v, n) => Column::Float(v, n),
            ColBuilder::Bool(v, n) => Column::Bool(v, n),
            ColBuilder::Str(v, n) => Column::Str(v, n),
            ColBuilder::Mixed(v) => Column::Mixed(v),
        }
    }
}

fn materialize<T>(v: Vec<T>, nulls: Nulls, wrap: impl Fn(T) -> Value) -> Vec<Value> {
    v.into_iter()
        .enumerate()
        .map(|(i, x)| {
            if nulls.is_null(i) {
                Value::Null
            } else {
                wrap(x)
            }
        })
        .collect()
}

/// A columnar batch: one [`Column`] per output column plus an explicit row
/// count (columns may be absent entirely for arity-0 rows).
#[derive(Clone, Debug, PartialEq)]
pub struct ColBatch {
    columns: Vec<Column>,
    len: usize,
}

impl ColBatch {
    /// Builds a batch from columns; all columns must share `len`.
    pub fn from_columns(columns: Vec<Column>, len: usize) -> ColBatch {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        ColBatch { columns, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column vectors.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column `c` (panics when out of range — callers gate on arity).
    pub fn col(&self, c: usize) -> &Column {
        &self.columns[c]
    }

    /// Borrowed scalar at (`row`, `col`).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> Cell<'_> {
        self.columns[col].cell(row)
    }

    /// Pivots rows into columns. Returns `None` when arities are ragged —
    /// a batch is rectangular by construction, so such inputs stay rows.
    pub fn from_rows(rows: &[Row]) -> Option<ColBatch> {
        let Some(first) = rows.first() else {
            return Some(ColBatch {
                columns: Vec::new(),
                len: 0,
            });
        };
        let arity = first.arity();
        if rows.iter().any(|r| r.arity() != arity) {
            return None;
        }
        let mut builders: Vec<ColBuilder> = (0..arity).map(|_| ColBuilder::new()).collect();
        for b in &mut builders {
            b.reserve(rows.len());
        }
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row.values()) {
                b.push_value(v.clone());
            }
        }
        Some(ColBatch {
            columns: builders.into_iter().map(ColBuilder::finish).collect(),
            len: rows.len(),
        })
    }

    /// Pivots back to rows, cloning cell payloads.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len)
            .map(|i| Row::new(self.columns.iter().map(|c| c.value(i)).collect()))
            .collect()
    }

    /// Pivots back to rows, consuming the batch so string/container
    /// payloads move instead of cloning.
    pub fn into_rows(self) -> Vec<Row> {
        let len = self.len;
        let mut cols: Vec<std::vec::IntoIter<Value>> = self
            .columns
            .into_iter()
            .map(|c| {
                let vals: Vec<Value> = match c {
                    Column::Int(v, n) => materialize(v, n, Value::Int),
                    Column::Float(v, n) => materialize(v, n, Value::Float),
                    Column::Bool(v, n) => materialize(v, n, Value::Bool),
                    Column::Str(v, n) => materialize(v, n, Value::Str),
                    Column::Mixed(v) => v,
                };
                vals.into_iter()
            })
            .collect();
        (0..len)
            .map(|_| {
                Row::new(
                    cols.iter_mut()
                        .map(|it| it.next().expect("column length matches batch len"))
                        .collect(),
                )
            })
            .collect()
    }

    /// Copies the rows at `sel` (in order) into a new batch.
    pub fn gather(&self, sel: &[u32]) -> ColBatch {
        ColBatch {
            columns: self.columns.iter().map(|c| c.gather(sel)).collect(),
            len: sel.len(),
        }
    }

    /// Pivots the selected row indexes straight to rows — the
    /// late-materialization shortcut for a filter whose output is about to
    /// be materialized anyway, skipping the intermediate gathered batch.
    /// Equivalent to `self.gather(sel).to_rows()`.
    pub fn rows_at(&self, sel: &[u32]) -> Vec<Row> {
        sel.iter()
            .map(|&i| {
                Row::new(
                    self.columns
                        .iter()
                        .map(|c| c.value(i as usize))
                        .collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    /// Copies the first `n` rows into a new batch.
    pub fn head(&self, n: usize) -> ColBatch {
        let n = n.min(self.len);
        ColBatch {
            columns: self.columns.iter().map(|c| c.head(n)).collect(),
            len: n,
        }
    }

    /// Concatenates batches of equal arity in order.
    pub fn concat(parts: Vec<ColBatch>) -> ColBatch {
        if parts.len() == 1 {
            return parts.into_iter().next().expect("one part");
        }
        let len = parts.iter().map(|p| p.len).sum();
        let arity = parts.first().map_or(0, ColBatch::arity);
        debug_assert!(parts.iter().all(|p| p.arity() == arity));
        let mut per_col: Vec<Vec<Column>> = (0..arity).map(|_| Vec::new()).collect();
        for part in parts {
            for (i, col) in part.columns.into_iter().enumerate() {
                per_col[i].push(col);
            }
        }
        ColBatch {
            columns: per_col.into_iter().map(Column::concat).collect(),
            len,
        }
    }

    /// Footprint charge identical to summing [`Row::approx_bytes`] over the
    /// pivoted rows — the guard's ledger must see the same bytes whichever
    /// representation a node produced.
    pub fn row_bytes(&self) -> u64 {
        let cells: u64 = self
            .columns
            .iter()
            .map(|c| (0..c.len()).map(|i| c.cell(i).approx_bytes()).sum::<u64>())
            .sum();
        2 * self.len as u64 + cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn value_matrix() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(3.5),
            Value::str(""),
            Value::str("héllo"),
            Value::Array(vec![Value::Int(1), Value::Null]),
            Value::object(vec![("k".into(), Value::str("v"))]),
        ]
    }

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// rows → ColBatch → rows is identity for every Value variant,
    /// including NULLs, in homogeneous and deliberately clashing columns.
    #[test]
    fn round_trip_is_identity() {
        let matrix = value_matrix();
        // One row per value (single column), plus rows that force clashes.
        let mut rows: Vec<Row> = matrix.iter().map(|v| Row::new(vec![v.clone()])).collect();
        rows.push(Row::new(vec![Value::Int(7)]));
        let batch = ColBatch::from_rows(&rows).expect("rectangular");
        assert_eq!(batch.len(), rows.len());
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.clone().into_rows(), rows);
    }

    #[test]
    fn round_trip_typed_columns_with_nulls() {
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                Row::new(vec![
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("s{i}"))
                    },
                    Value::Float(i as f64 / 3.0),
                    Value::Bool(i % 2 == 0),
                ])
            })
            .collect();
        let batch = ColBatch::from_rows(&rows).expect("rectangular");
        // Typed classification happened (not a Mixed fallback).
        assert!(matches!(batch.col(0), Column::Int(..)));
        assert!(matches!(batch.col(1), Column::Str(..)));
        assert!(matches!(batch.col(2), Column::Float(..)));
        assert!(matches!(batch.col(3), Column::Bool(..)));
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.into_rows(), rows);
    }

    #[test]
    fn all_null_and_empty_and_zero_arity_round_trip() {
        let empty: Vec<Row> = Vec::new();
        assert_eq!(ColBatch::from_rows(&empty).unwrap().to_rows(), empty);

        let nulls: Vec<Row> = (0..5).map(|_| Row::new(vec![Value::Null])).collect();
        assert_eq!(ColBatch::from_rows(&nulls).unwrap().to_rows(), nulls);

        let zero_arity: Vec<Row> = (0..4).map(|_| Row::new(vec![])).collect();
        let b = ColBatch::from_rows(&zero_arity).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.arity(), 0);
        assert_eq!(b.to_rows(), zero_arity);
    }

    #[test]
    fn ragged_rows_stay_rows() {
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Int(1), Value::Int(2)]),
        ];
        assert!(ColBatch::from_rows(&rows).is_none());
    }

    /// A type clash mid-column converts the typed prefix to Mixed without
    /// losing any value.
    #[test]
    fn type_clash_degrades_losslessly() {
        let rows = vec![
            Row::new(vec![Value::Int(1)]),
            Row::new(vec![Value::Null]),
            Row::new(vec![Value::str("x")]),
            Row::new(vec![Value::Float(2.5)]),
        ];
        let batch = ColBatch::from_rows(&rows).unwrap();
        assert!(matches!(batch.col(0), Column::Mixed(_)));
        assert_eq!(batch.to_rows(), rows);
    }

    #[test]
    fn gather_head_and_concat() {
        let rows: Vec<Row> = (0..10)
            .map(|i| Row::new(vec![Value::Int(i), Value::str(format!("r{i}"))]))
            .collect();
        let batch = ColBatch::from_rows(&rows).unwrap();
        let picked = batch.gather(&[9, 0, 3]);
        assert_eq!(
            picked.to_rows(),
            vec![rows[9].clone(), rows[0].clone(), rows[3].clone()]
        );
        assert_eq!(batch.rows_at(&[9, 0, 3]), picked.to_rows());
        assert_eq!(batch.rows_at(&[]), Vec::<Row>::new());
        assert_eq!(batch.head(3).to_rows(), rows[..3].to_vec());
        let joined = ColBatch::concat(vec![batch.head(2), batch.gather(&[5])]);
        assert_eq!(
            joined.to_rows(),
            vec![rows[0].clone(), rows[1].clone(), rows[5].clone()]
        );
    }

    /// Concatenating chunks that classified differently degrades to Mixed
    /// but keeps values exact.
    #[test]
    fn concat_heterogeneous_chunks() {
        let a = ColBatch::from_rows(&[Row::new(vec![Value::Int(1)])]).unwrap();
        let b = ColBatch::from_rows(&[Row::new(vec![Value::str("x")])]).unwrap();
        let joined = ColBatch::concat(vec![a, b]);
        assert_eq!(
            joined.to_rows(),
            vec![
                Row::new(vec![Value::Int(1)]),
                Row::new(vec![Value::str("x")])
            ]
        );
    }

    /// The ledger must charge identical bytes for a batch and its pivoted
    /// rows.
    #[test]
    fn row_bytes_matches_pivoted_rows() {
        let matrix = value_matrix();
        let rows: Vec<Row> = matrix
            .chunks(3)
            .map(|c| Row::new(c.to_vec()))
            .filter(|r| r.arity() == 3)
            .collect();
        let batch = ColBatch::from_rows(&rows).unwrap();
        let expected: u64 = rows.iter().map(Row::approx_bytes).sum();
        assert_eq!(batch.row_bytes(), expected);
    }

    /// Cell comparison, equality, hashing and byte accounting agree with
    /// the equivalent owned `Value` across the full variant matrix.
    #[test]
    fn cell_semantics_match_value_semantics() {
        let matrix = value_matrix();
        let rows: Vec<Row> = matrix.iter().map(|v| Row::new(vec![v.clone()])).collect();
        let batch = ColBatch::from_rows(&rows).unwrap();
        for i in 0..batch.len() {
            let cell = batch.cell(i, 0);
            let owned = cell.to_value();
            assert_eq!(owned, matrix[i].clone());
            assert_eq!(hash_of(&cell), hash_of(&owned), "hash parity at {i}");
            assert_eq!(cell.approx_bytes(), owned.approx_bytes());
            assert_eq!(cell.as_i64(), owned.as_i64());
            assert_eq!(
                cell.as_f64().map(f64::to_bits),
                owned.as_f64().map(f64::to_bits)
            );
            for other in &matrix {
                assert_eq!(
                    cell.cmp_value(other),
                    owned.cmp(other),
                    "cmp parity {owned:?} vs {other:?}"
                );
                assert_eq!(cell.eq_value(other), &owned == other);
            }
        }
        // Cross-type numeric equality survives the cell view.
        let b = ColBatch::from_rows(&[Row::new(vec![Value::Int(3)])]).unwrap();
        assert!(b.cell(0, 0).eq_value(&Value::Float(3.0)));
        assert_eq!(hash_of(&b.cell(0, 0)), hash_of(&Value::Float(3.0)));
    }
}
