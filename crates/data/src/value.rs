//! Runtime values and rows.
//!
//! [`Value`] is the single dynamic value type flowing through both simulated
//! stores. It needs three properties that plain `f64`/enum combinations don't
//! give for free:
//!
//! 1. **Total equality and hashing** so values can serve as hash-join and
//!    group-by keys (floats compare by bit pattern after NaN normalization);
//! 2. **Total ordering** so ORDER BY and min/max aggregates are well-defined
//!    across types (type-rank order: null < bool < number < string < array <
//!    object);
//! 3. **Size accounting** so the simulated stores can charge bytes for
//!    materialized intermediates.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically-typed runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaNs are normalized to a single canonical NaN for
    /// equality and hashing.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list (JSON array).
    Array(Vec<Value>),
    /// Key-ordered object (JSON object). Keys are kept sorted so two objects
    /// with the same fields compare equal regardless of construction order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object, sorting fields by key (last write wins on
    /// duplicates).
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        let mut fields = fields;
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                // keep the later entry's value
                earlier.1 = std::mem::replace(&mut later.1, Value::Null);
                true
            } else {
                false
            }
        });
        Value::Object(fields)
    }

    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL truthiness: `Bool(true)` is true; everything else (including
    /// non-zero numbers) is not. NULL is not true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view, if this is an Int or Float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if this is an Int (no float coercion — lossy casts are
    /// explicit in the expression layer).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if this is a Str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (objects keep keys sorted, so binary search).
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields
                .binary_search_by(|(k, _)| k.as_str().cmp(key))
                .ok()
                .map(|i| &fields[i].1),
            _ => None,
        }
    }

    /// A rank used to order values of different types.
    pub(crate) fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }

    /// Approximate in-memory/storage footprint in bytes.
    ///
    /// This is what the simulated stores charge for materialized
    /// intermediates; it intentionally approximates a compact serialized form
    /// rather than Rust's in-memory layout.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 4 + s.len() as u64,
            Value::Array(items) => 4 + items.iter().map(Value::approx_bytes).sum::<u64>(),
            Value::Object(fields) => {
                4 + fields
                    .iter()
                    .map(|(k, v)| 2 + k.len() as u64 + v.approx_bytes())
                    .sum::<u64>()
            }
        }
    }

    /// Canonical NaN-normalized bits for float hashing/equality.
    pub(crate) fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            // +0.0 and -0.0 compare equal; normalize bits.
            0
        } else {
            f.to_bits()
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            // Numbers compare numerically across Int/Float; NaN sorts last
            // among numbers and equals itself.
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Str(a), Str(b)) => a.cmp(b),
            (Array(a), Array(b)) => a.cmp(b),
            (Object(a), Object(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

/// Total order on floats: ordinary order, with NaN greater than everything
/// and equal to itself.
pub(crate) fn cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).expect("non-NaN floats compare"),
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that represent the same number must hash equally
            // because they compare equal: hash the canonical f64 bits when the
            // int is exactly representable, else the int itself.
            Value::Int(i) => {
                2u8.hash(state);
                Value::float_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                Value::float_bits(*f).hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Array(items) => {
                4u8.hash(state);
                items.hash(state);
            }
            Value::Object(fields) => {
                5u8.hash(state);
                fields.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(_) | Value::Object(_) => {
                write!(f, "{}", crate::json::to_json(self))
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A row: a fixed-arity tuple of values positionally aligned with a
/// [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Builds a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The row's arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Positional access.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Projects the row onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::new(values)
    }

    /// Approximate serialized footprint, matching [`Value::approx_bytes`].
    pub fn approx_bytes(&self) -> u64 {
        2 + self.values.iter().map(Value::approx_bytes).sum::<u64>()
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
        assert!(Value::Float(1e300) < nan);
    }

    #[test]
    fn signed_zero_normalizes() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn type_rank_order() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::str("a"),
            Value::Array(vec![]),
            Value::Object(vec![]),
        ];
        for pair in vals.windows(2) {
            assert!(pair[0] < pair[1], "{:?} < {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn object_field_order_is_canonical() {
        let a = Value::object(vec![
            ("b".into(), Value::Int(2)),
            ("a".into(), Value::Int(1)),
        ]);
        let b = Value::object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Int(2)),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.get_field("a"), Some(&Value::Int(1)));
        assert_eq!(a.get_field("missing"), None);
    }

    #[test]
    fn object_duplicate_keys_last_wins() {
        let v = Value::object(vec![
            ("k".into(), Value::Int(1)),
            ("k".into(), Value::Int(2)),
        ]);
        assert_eq!(v.get_field("k"), Some(&Value::Int(2)));
        if let Value::Object(fields) = &v {
            assert_eq!(fields.len(), 1);
        } else {
            panic!("not an object");
        }
    }

    #[test]
    fn truthiness_is_strict() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Int(1).is_true());
        assert!(!Value::Null.is_true());
    }

    #[test]
    fn approx_bytes_monotone_in_content() {
        let small = Value::str("ab");
        let big = Value::str("abcdefgh");
        assert!(big.approx_bytes() > small.approx_bytes());
        let arr = Value::Array(vec![small.clone(), big.clone()]);
        assert!(arr.approx_bytes() > small.approx_bytes() + big.approx_bytes());
    }

    #[test]
    fn row_project_and_concat() {
        let r = Row::new(vec![Value::Int(1), Value::str("x"), Value::Bool(true)]);
        let p = r.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
        let joined = r.concat(&p);
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined.get(3), &Value::Bool(true));
    }

    #[test]
    fn row_bytes_include_overhead() {
        let empty = Row::new(vec![]);
        assert_eq!(empty.approx_bytes(), 2);
    }
}
