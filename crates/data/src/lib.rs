//! Data layer for the MISO reproduction.
//!
//! The paper's primary data source is "large log files ... social media data
//! drawn from sites such as Twitter, Foursquare, Instagram, Yelp", stored as
//! JSON text in HDFS, plus a small static Landmarks data set. This crate
//! provides:
//!
//! * [`value`] — the dynamically-typed [`value::Value`] runtime value, with a
//!   total order and hashing suitable for join/group keys;
//! * [`json`] — a minimal hand-written JSON parser/printer (the sanctioned
//!   offline dependency set has `serde` but not `serde_json`);
//! * [`batch`] — typed columnar batches ([`batch::ColBatch`]) for the
//!   vectorized executor, with lossless row pivots at store boundaries;
//! * [`schema`] — field/record schemas for structured intermediates;
//! * [`logs`] — deterministic synthetic generators for the three data sets
//!   with shared join keys (user ids across Twitter/Foursquare, venue ids
//!   across Foursquare/Landmarks);
//! * [`stats`] — lightweight column statistics feeding cardinality
//!   estimation in `miso-plan`.

pub mod batch;
pub mod checksum;
pub mod delta;
pub mod json;
pub mod logs;
pub mod schema;
pub mod stats;
pub mod value;

pub use batch::{Cell, ColBatch, ColBuilder, Column, Nulls};
pub use checksum::{checksum_rows, Checksum, RowSetDigest};
pub use delta::Delta;
pub use schema::{DataType, Field, Schema};
pub use value::{Row, Value};
