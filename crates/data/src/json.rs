//! Minimal JSON parser and printer.
//!
//! Log records are stored as JSON text lines in the simulated HDFS, exactly
//! as the paper describes ("logs are stored as flat HDFS files in HV in a
//! text-based format such as JSON"). The HV scan operator plays the role of
//! Hive's SerDe by parsing each line through [`parse_json`].
//!
//! This is a deliberately small, strict-enough recursive-descent parser:
//! full string escapes, numbers (integers kept exact as `i64` when possible),
//! nested arrays/objects, and precise error offsets. It is not a general
//! serde backend — the sanctioned offline crate set includes `serde` but not
//! `serde_json`, and the stores only need `Value` round-trips.

use crate::value::Value;
use miso_common::{MisoError, Result};

/// Parses a complete JSON document into a [`Value`].
///
/// Trailing non-whitespace input is an error: each log line must be exactly
/// one JSON value.
pub fn parse_json(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Serializes a [`Value`] to compact JSON.
///
/// `Null`→`null`, strings are escaped, objects print in their canonical
/// (sorted) key order. Non-finite floats serialize as `null`, matching the
/// common lenient-writer behaviour.
pub fn to_json(value: &Value) -> String {
    let mut out = String::with_capacity(64);
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure floats round-trip as floats (append .0 if integral).
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> MisoError {
        MisoError::Parse(format!("JSON at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
        Ok(Value::object(fields))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
        Ok(Value::Array(items))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle surrogate pairs for completeness.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired high surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?,
                            );
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.error("unexpected low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) => {
                    // Reassemble multi-byte UTF-8: since input is &str, bytes
                    // are valid UTF-8; collect the full codepoint.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.error("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number slice is ASCII");
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid float literal"))
        } else {
            // Keep integers exact when they fit; overflow falls back to f64.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.error("invalid integer literal")),
            }
        }
    }
}

fn utf8_width(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// A scalar from the zero-copy flat-line fast path: strings borrow from the
/// input line instead of allocating.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FlatVal<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(&'a str),
}

impl FlatVal<'_> {
    /// The equivalent owned [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            FlatVal::Null => Value::Null,
            FlatVal::Bool(b) => Value::Bool(*b),
            FlatVal::Int(i) => Value::Int(*i),
            FlatVal::Float(f) => Value::Float(*f),
            FlatVal::Str(s) => Value::Str((*s).to_string()),
        }
    }
}

/// Zero-copy fast parse of one **flat** JSON object line — the shape of
/// every generated log record: `{"key": scalar, ...}` with no nesting and
/// no string escapes. The columnar scan uses this to feed typed column
/// vectors without materializing a [`Value`] tree per line.
///
/// Returns `None` as soon as anything outside the subset appears (nested
/// containers, `\` escapes, a non-object top level, trailing characters…);
/// the caller must then fall back to [`parse_json`]. The guarantee is
/// one-sided and exact: `Some(fields)` implies
/// `parse_json(line) == Ok(Value::object(fields as owned values))`
/// with the same duplicate-key (last-wins) and number semantics — the
/// grammar below is byte-for-byte the strict parser's.
pub fn parse_flat_line(line: &str) -> Option<Vec<(&str, FlatVal<'_>)>> {
    let b = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            *pos += 1;
        }
    };
    // A `"`-delimited run with no escapes and no control bytes; multi-byte
    // UTF-8 passes through untouched (its bytes are all >= 0x80).
    let simple_str = |pos: &mut usize| -> Option<&str> {
        if b.get(*pos) != Some(&b'"') {
            return None;
        }
        let start = *pos + 1;
        let mut i = start;
        loop {
            match b.get(i)? {
                b'"' => break,
                b'\\' => return None,
                c if *c < 0x20 => return None,
                _ => i += 1,
            }
        }
        *pos = i + 1;
        // `start..i` is bounded by ASCII quotes, so it is a char boundary.
        Some(&line[start..i])
    };
    skip_ws(&mut pos);
    if b.get(pos) != Some(&b'{') {
        return None;
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if b.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            skip_ws(&mut pos);
            let key = simple_str(&mut pos)?;
            skip_ws(&mut pos);
            if b.get(pos) != Some(&b':') {
                return None;
            }
            pos += 1;
            skip_ws(&mut pos);
            let val = match b.get(pos)? {
                b'"' => FlatVal::Str(simple_str(&mut pos)?),
                b't' if b[pos..].starts_with(b"true") => {
                    pos += 4;
                    FlatVal::Bool(true)
                }
                b'f' if b[pos..].starts_with(b"false") => {
                    pos += 5;
                    FlatVal::Bool(false)
                }
                b'n' if b[pos..].starts_with(b"null") => {
                    pos += 4;
                    FlatVal::Null
                }
                c if *c == b'-' || c.is_ascii_digit() => {
                    // Same number grammar as `Parser::parse_number`.
                    let start = pos;
                    if b.get(pos) == Some(&b'-') {
                        pos += 1;
                    }
                    while matches!(b.get(pos), Some(c) if c.is_ascii_digit()) {
                        pos += 1;
                    }
                    let mut is_float = false;
                    if b.get(pos) == Some(&b'.') {
                        is_float = true;
                        pos += 1;
                        while matches!(b.get(pos), Some(c) if c.is_ascii_digit()) {
                            pos += 1;
                        }
                    }
                    if matches!(b.get(pos), Some(b'e' | b'E')) {
                        is_float = true;
                        pos += 1;
                        if matches!(b.get(pos), Some(b'+' | b'-')) {
                            pos += 1;
                        }
                        while matches!(b.get(pos), Some(c) if c.is_ascii_digit()) {
                            pos += 1;
                        }
                    }
                    let text = &line[start..pos];
                    if text.is_empty() || text == "-" {
                        return None;
                    }
                    if is_float {
                        FlatVal::Float(text.parse::<f64>().ok()?)
                    } else {
                        match text.parse::<i64>() {
                            Ok(i) => FlatVal::Int(i),
                            Err(_) => FlatVal::Float(text.parse::<f64>().ok()?),
                        }
                    }
                }
                _ => return None,
            };
            fields.push((key, val));
            skip_ws(&mut pos);
            match b.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    skip_ws(&mut pos);
    if pos != b.len() {
        return None;
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fast path must agree with the strict parser wherever it accepts,
    /// and decline (never mis-accept) everything else.
    #[test]
    fn flat_line_agrees_with_strict_parser() {
        let accepted = [
            r#"{}"#,
            r#"{"a": 1}"#,
            r#"  { "a" : -12 , "b" : "x y" , "c" : true , "d" : null }  "#,
            r#"{"f": 3.5, "g": 1e3, "h": -0.0, "i": 1., "j": 1E+2}"#,
            r#"{"dup": 1, "dup": 2}"#,
            r#"{"big": 99999999999999999999}"#,
            r#"{"uni": "héllo ✓"}"#,
            r#"{"empty": ""}"#,
        ];
        for line in accepted {
            let flat =
                parse_flat_line(line).unwrap_or_else(|| panic!("fast path should accept {line}"));
            let owned = Value::object(
                flat.iter()
                    .map(|(k, v)| ((*k).to_string(), v.to_value()))
                    .collect(),
            );
            assert_eq!(parse_json(line).unwrap(), owned, "disagreement on {line}");
        }
        let declined = [
            r#"{"nested": {"a": 1}}"#,
            r#"{"arr": [1]}"#,
            r#"{"esc": "a\"b"}"#,
            r#"{"esc": "a\\b"}"#,
            r#"{"bad": tru}"#,
            r#"{"bad": 1x}"#,
            r#"{"bad": -}"#,
            r#"{"bad": 1e}"#,
            r#"{"a": 1} trailing"#,
            r#"{"a": 1"#,
            r#"[1, 2]"#,
            r#"42"#,
            r#"{"a": 1,}"#,
            "not json at all",
            "",
        ];
        for line in declined {
            assert!(parse_flat_line(line).is_none(), "should decline {line}");
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_json("null").unwrap(), Value::Null);
        assert_eq!(parse_json("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_json("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_json("42").unwrap(), Value::Int(42));
        assert_eq!(parse_json("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_json("3.25").unwrap(), Value::Float(3.25));
        assert_eq!(parse_json("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_json("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_json(r#"{"user":{"id":7,"tags":["a","b"]},"ok":true}"#).unwrap();
        assert_eq!(
            v.get_field("user").unwrap().get_field("id"),
            Some(&Value::Int(7))
        );
        assert_eq!(
            v.get_field("user").unwrap().get_field("tags"),
            Some(&Value::Array(vec![Value::str("a"), Value::str("b")]))
        );
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_json("  { \"a\" : [ 1 , 2 ] }\n").unwrap();
        assert_eq!(
            v.get_field("a"),
            Some(&Value::Array(vec![Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("{} x").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "\"unterminated",
            "tru",
            "01a",
            "-",
        ] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\\ unicode: ünïcødé 好";
        let json = to_json(&Value::str(s));
        assert_eq!(parse_json(&json).unwrap(), Value::str(s));
    }

    #[test]
    fn surrogate_pairs() {
        // U+1F600 GRINNING FACE as escaped surrogate pair
        let v = parse_json(r#""😀""#).unwrap();
        assert_eq!(v, Value::str("\u{1F600}"));
        assert!(parse_json(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_json(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn control_characters_must_be_escaped() {
        assert!(parse_json("\"a\nb\"").is_err());
        assert_eq!(parse_json(r#""a\nb""#).unwrap(), Value::str("a\nb"));
    }

    #[test]
    fn huge_integers_degrade_to_float() {
        let v = parse_json("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn roundtrip_structures() {
        let original = Value::object(vec![
            ("id".into(), Value::Int(123)),
            ("score".into(), Value::Float(4.5)),
            ("name".into(), Value::str("caffè")),
            (
                "tags".into(),
                Value::Array(vec![Value::str("x"), Value::Null, Value::Bool(false)]),
            ),
            (
                "nested".into(),
                Value::object(vec![("k".into(), Value::Array(vec![]))]),
            ),
        ]);
        let text = to_json(&original);
        assert_eq!(parse_json(&text).unwrap(), original);
    }

    #[test]
    fn float_serialization_keeps_floatness() {
        let v = Value::Float(2.0);
        let text = to_json(&v);
        assert_eq!(text, "2.0");
        assert_eq!(parse_json(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_json(&Value::Float(f64::NAN)), "null");
        assert_eq!(to_json(&Value::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_json("{\"a\": @}").unwrap_err();
        assert!(err.to_string().contains("byte 6"), "{err}");
    }
}
