//! Schemas for structured intermediates.
//!
//! Raw logs are schemaless JSON; structure appears the moment a query's scan
//! extracts fields ("the log schema of interest is specified within the query
//! itself"). From that point on every operator output, opportunistic view,
//! and DW table carries a [`Schema`]: an ordered list of named, typed fields.

use std::fmt;

/// The (deliberately small) type lattice of the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Any JSON value — used for fields extracted without a cast and for
    /// UDF outputs whose type is opaque.
    Json,
}

impl DataType {
    /// Whether a value of type `self` can be used where `target` is expected
    /// without an explicit cast. `Json` accepts everything; `Int` widens to
    /// `Float`.
    pub fn coercible_to(&self, target: DataType) -> bool {
        use DataType::*;
        matches!(
            (self, target),
            (Bool, Bool)
                | (Int, Int)
                | (Int, Float)
                | (Float, Float)
                | (Str, Str)
                | (_, Json)
                | (Json, _)
        )
    }

    /// The common type of two numeric operands, if any.
    pub fn numeric_join(&self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (Int, Int) => Some(Int),
            (Int, Float) | (Float, Int) | (Float, Float) => Some(Float),
            (Json, Int) | (Int, Json) | (Json, Float) | (Float, Json) | (Json, Json) => Some(Json),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Json => "JSON",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name; unique within a schema.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Field {
    /// Constructs a field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.ty)
    }
}

/// An ordered list of fields with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema; panics on duplicate names (construction-time bug).
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for other in &fields[i + 1..] {
                assert_ne!(f.name, other.name, "duplicate column `{}`", f.name);
            }
        }
        Schema { fields }
    }

    /// An empty schema (zero columns).
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Positional field access.
    pub fn field_at(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Concatenates two schemas (join output); disambiguates duplicate names
    /// from the right side with a `r_` prefix, matching common SQL engines'
    /// pragmatics for unqualified collisions.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if fields.iter().any(|existing| existing.name == f.name) {
                format!("r_{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.ty));
        }
        Schema::new(fields)
    }

    /// Projects onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema::new(indexes.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// All column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("uid", DataType::Int),
            Field::new("text", DataType::Str),
            Field::new("score", DataType::Float),
        ])
    }

    #[test]
    fn index_and_field_lookup() {
        let s = sample();
        assert_eq!(s.index_of("text"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.field("score").unwrap().ty, DataType::Float);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Str),
        ]);
    }

    #[test]
    fn join_disambiguates() {
        let left = sample();
        let right = Schema::new(vec![
            Field::new("uid", DataType::Int),
            Field::new("venue", DataType::Str),
        ]);
        let joined = left.join(&right);
        assert_eq!(
            joined.names(),
            vec!["uid", "text", "score", "r_uid", "venue"]
        );
    }

    #[test]
    fn project_keeps_order() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.names(), vec!["score", "uid"]);
    }

    #[test]
    fn coercion_rules() {
        assert!(DataType::Int.coercible_to(DataType::Float));
        assert!(!DataType::Float.coercible_to(DataType::Int));
        assert!(DataType::Str.coercible_to(DataType::Json));
        assert!(DataType::Json.coercible_to(DataType::Int));
        assert!(!DataType::Bool.coercible_to(DataType::Str));
    }

    #[test]
    fn numeric_join_rules() {
        assert_eq!(
            DataType::Int.numeric_join(DataType::Int),
            Some(DataType::Int)
        );
        assert_eq!(
            DataType::Int.numeric_join(DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(DataType::Str.numeric_join(DataType::Int), None);
        assert_eq!(
            DataType::Json.numeric_join(DataType::Int),
            Some(DataType::Json)
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(sample().to_string(), "(uid INT, text STRING, score FLOAT)");
    }
}
