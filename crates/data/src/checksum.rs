//! Content checksums for materialized row sets.
//!
//! A [`Checksum`] digests the *multiset* of rows in a materialized view —
//! order-insensitive, because a recomputed view is semantically the same
//! set of tuples even when the execution engine emits them in a different
//! order. Each row is digested with the same FNV-1a/64 tagged pre-order
//! encoding the plan fingerprints use (stable across processes and
//! platforms), and the per-row digests are combined with a commutative
//! wrapping sum before a final mix that binds the row count.
//!
//! The checksum is computed once at materialization time, carried next to
//! the stored rows, and re-verified on demand (view reads, post-transfer,
//! post-promote, scrubbing). A mismatch means the stored bytes no longer
//! agree with what was materialized — silent corruption.

use crate::value::{Row, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// Incremental FNV-1a/64 (same constants as the plan fingerprints).
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A 64-bit content digest of a row multiset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Checksum(pub u64);

impl std::fmt::Display for Checksum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Digest of one row: FNV-1a over a tagged pre-order value encoding.
pub fn checksum_row(row: &Row) -> u64 {
    let mut h = Fnv::new();
    h.u64(row.arity() as u64);
    for v in row.values() {
        digest_value(v, &mut h);
    }
    h.finish()
}

/// Content checksum of a row multiset: order-insensitive (wrapping sum of
/// per-row digests), row-count-binding (the count is mixed into the final
/// digest, so dropped duplicates are detected).
pub fn checksum_rows(rows: &[Row]) -> Checksum {
    let mut acc: u64 = 0;
    for row in rows {
        acc = acc.wrapping_add(checksum_row(row));
    }
    finish_digest(acc, rows.len() as u64)
}

fn finish_digest(sum: u64, count: u64) -> Checksum {
    let mut h = Fnv::new();
    h.u64(sum);
    h.u64(count);
    Checksum(h.finish())
}

/// The incremental state behind [`checksum_rows`]: the commutative wrapping
/// sum of per-row digests plus the row count.
///
/// Because the combiner is a wrapping sum, the multiset digest forms a
/// group: rows can be added *and removed* in any order, and
/// [`RowSetDigest::finish`] always equals [`checksum_rows`] over the
/// resulting multiset. This is what makes incremental view maintenance
/// re-stamp a checksum in O(|delta|) — the maintainer carries the
/// `(sum, count)` state next to the view, folds in appended rows and folds
/// out replaced aggregate rows, and the restamped checksum is bit-identical
/// to a full rebuild's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowSetDigest {
    sum: u64,
    count: u64,
}

impl RowSetDigest {
    /// State for the empty multiset.
    pub fn new() -> RowSetDigest {
        RowSetDigest::default()
    }

    /// State for an existing row set (O(|rows|), paid once at build time).
    pub fn from_rows(rows: &[Row]) -> RowSetDigest {
        let mut d = RowSetDigest::new();
        d.add_rows(rows);
        d
    }

    /// Folds one row into the multiset.
    pub fn add_row(&mut self, row: &Row) {
        self.sum = self.sum.wrapping_add(checksum_row(row));
        self.count += 1;
    }

    /// Folds a batch of rows into the multiset.
    pub fn add_rows(&mut self, rows: &[Row]) {
        for row in rows {
            self.add_row(row);
        }
    }

    /// Removes one row from the multiset (the caller asserts it is
    /// present; removing an absent row silently corrupts the digest, which
    /// the maintainer's verify-against-catalog check would then catch).
    pub fn remove_row(&mut self, row: &Row) {
        debug_assert!(self.count > 0, "removing from an empty multiset digest");
        self.sum = self.sum.wrapping_sub(checksum_row(row));
        self.count = self.count.wrapping_sub(1);
    }

    /// Swaps `old` for `new` in one step (aggregate group update).
    pub fn replace_row(&mut self, old: &Row, new: &Row) {
        self.sum = self
            .sum
            .wrapping_sub(checksum_row(old))
            .wrapping_add(checksum_row(new));
    }

    /// Merges another digest's multiset into this one.
    pub fn merge(&mut self, other: &RowSetDigest) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
    }

    /// Rows currently in the multiset.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The checksum of the current multiset — bit-identical to
    /// [`checksum_rows`] over the same rows.
    pub fn finish(&self) -> Checksum {
        finish_digest(self.sum, self.count)
    }
}

/// Silently flips one value in the first non-empty row (simulated bit
/// rot for chaos testing). The mutation is chosen so the multiset
/// checksum is guaranteed to change: booleans invert, ints flip their low
/// bit, strings grow a byte, and every other type degrades to a different
/// type tag. Returns whether anything changed (no non-empty row → `false`).
///
/// Takes the shared `Arc` the stores keep rows behind; copy-on-write via
/// [`Arc::make_mut`] mirrors a corrupted replica diverging from the copy a
/// transfer already shipped.
pub fn corrupt_first_row(rows: &mut std::sync::Arc<Vec<Row>>) -> bool {
    let Some(idx) = rows.iter().position(|r| r.arity() > 0) else {
        return false;
    };
    let mut values = rows[idx].values().to_vec();
    values[0] = flip_value(&values[0]);
    std::sync::Arc::make_mut(rows)[idx] = Row::new(values);
    true
}

fn flip_value(v: &Value) -> Value {
    match v {
        Value::Null => Value::Int(1),
        Value::Bool(b) => Value::Bool(!b),
        Value::Int(i) => Value::Int(i ^ 1),
        Value::Float(f) => Value::Int(f.to_bits() as i64),
        Value::Str(s) => Value::Str(format!("{s}\u{1a}")),
        Value::Array(_) | Value::Object(_) => Value::Null,
    }
}

fn digest_value(v: &Value, h: &mut Fnv) {
    match v {
        Value::Null => h.byte(0),
        Value::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Value::Int(i) => {
            h.byte(2);
            h.u64(*i as u64);
        }
        Value::Float(f) => {
            h.byte(3);
            // Normalize like Value's Hash: signed zero collapses, and NaN
            // (which equals itself under the total order) gets one bit
            // pattern.
            let bits = if *f == 0.0 {
                0
            } else if f.is_nan() {
                f64::NAN.to_bits()
            } else {
                f.to_bits()
            };
            h.u64(bits);
        }
        Value::Str(s) => {
            h.byte(4);
            h.str(s);
        }
        Value::Array(items) => {
            h.byte(5);
            h.u64(items.len() as u64);
            for item in items {
                digest_value(item, h);
            }
        }
        Value::Object(fields) => {
            h.byte(6);
            h.u64(fields.len() as u64);
            for (k, val) in fields {
                h.str(k);
                digest_value(val, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn empty_and_nonempty_differ() {
        let a = checksum_rows(&[]);
        let b = checksum_rows(&[row(vec![Value::Int(1)])]);
        assert_ne!(a, b);
        assert_eq!(a, checksum_rows(&[]));
    }

    #[test]
    fn order_insensitive() {
        let r1 = row(vec![Value::Int(1), Value::str("a")]);
        let r2 = row(vec![Value::Int(2), Value::str("b")]);
        let r3 = row(vec![Value::Null, Value::Float(0.5)]);
        let fwd = checksum_rows(&[r1.clone(), r2.clone(), r3.clone()]);
        let rev = checksum_rows(&[r3, r1, r2]);
        assert_eq!(fwd, rev, "row order must not change the checksum");
    }

    #[test]
    fn single_value_flip_is_detected() {
        let clean = vec![
            row(vec![Value::str("city"), Value::Int(10)]),
            row(vec![Value::str("town"), Value::Int(20)]),
        ];
        let mut bad = clean.clone();
        bad[0] = row(vec![Value::str("city"), Value::Int(11)]);
        assert_ne!(checksum_rows(&clean), checksum_rows(&bad));
    }

    #[test]
    fn multiplicity_matters() {
        let r = row(vec![Value::Int(7)]);
        let once = checksum_rows(&[r.clone()]);
        let twice = checksum_rows(&[r.clone(), r]);
        assert_ne!(once, twice, "dropped duplicates must be detected");
    }

    #[test]
    fn float_normalization_matches_value_equality() {
        let pos = row(vec![Value::Float(0.0)]);
        let neg = row(vec![Value::Float(-0.0)]);
        assert_eq!(checksum_rows(&[pos]), checksum_rows(&[neg]));
        let nan1 = row(vec![Value::Float(f64::NAN)]);
        let nan2 = row(vec![Value::Float(-f64::NAN)]);
        assert_eq!(checksum_rows(&[nan1]), checksum_rows(&[nan2]));
    }

    #[test]
    fn corrupt_first_row_always_changes_the_checksum() {
        use std::sync::Arc;
        let cases: Vec<Vec<Row>> = vec![
            vec![row(vec![Value::Null])],
            vec![row(vec![Value::Bool(false)])],
            vec![row(vec![Value::Int(0)])],
            vec![row(vec![Value::Float(2.5)])],
            vec![row(vec![Value::str("abc")])],
            vec![row(vec![Value::Array(vec![Value::Int(1)])])],
            vec![row(vec![]), row(vec![Value::Int(9), Value::str("x")])],
        ];
        for rows in cases {
            let before = checksum_rows(&rows);
            let mut arc = Arc::new(rows);
            let shared = arc.clone();
            assert!(corrupt_first_row(&mut arc));
            assert_ne!(checksum_rows(&arc), before, "flip went undetected: {arc:?}");
            assert_eq!(
                checksum_rows(&shared),
                before,
                "copy-on-write must not touch prior readers"
            );
        }
        let mut empty: Arc<Vec<Row>> = Arc::new(vec![]);
        assert!(!corrupt_first_row(&mut empty));
        let mut zero_arity = Arc::new(vec![row(vec![])]);
        assert!(!corrupt_first_row(&mut zero_arity));
    }

    #[test]
    fn rowset_digest_matches_full_checksum() {
        let rows: Vec<Row> = (0..37)
            .map(|i| {
                row(vec![
                    Value::Int(i),
                    Value::str(format!("r{i}")),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float(i as f64 / 3.0)
                    },
                ])
            })
            .collect();
        // Build from scratch vs fold one at a time.
        let whole = RowSetDigest::from_rows(&rows);
        assert_eq!(whole.finish(), checksum_rows(&rows));
        assert_eq!(whole.count(), rows.len() as u64);
        // Base + delta fold equals the full digest for every split point.
        for split in [0, 1, 17, rows.len()] {
            let mut d = RowSetDigest::from_rows(&rows[..split]);
            d.add_rows(&rows[split..]);
            assert_eq!(d.finish(), checksum_rows(&rows), "split {split}");
        }
        // Merge of two halves equals the whole.
        let mut left = RowSetDigest::from_rows(&rows[..20]);
        left.merge(&RowSetDigest::from_rows(&rows[20..]));
        assert_eq!(left.finish(), checksum_rows(&rows));
    }

    #[test]
    fn rowset_digest_remove_and_replace_are_exact_inverses() {
        let a = row(vec![Value::str("austin"), Value::Int(3)]);
        let b = row(vec![Value::str("boston"), Value::Int(5)]);
        let c = row(vec![Value::str("boston"), Value::Int(9)]);
        let mut d = RowSetDigest::from_rows(&[a.clone(), b.clone()]);
        // Replace b -> c: must equal a fresh digest of {a, c}.
        d.replace_row(&b, &c);
        assert_eq!(d.finish(), checksum_rows(&[a.clone(), c.clone()]));
        // Remove c: back to just {a}.
        d.remove_row(&c);
        assert_eq!(d.finish(), checksum_rows(std::slice::from_ref(&a)));
        // Add/remove in a different order than the rebuild would see.
        let mut e = RowSetDigest::new();
        e.add_row(&c);
        e.add_row(&a);
        e.remove_row(&c);
        assert_eq!(e.finish(), checksum_rows(&[a]));
    }

    #[test]
    fn stable_literal_digest() {
        // Pin the digest of a fixed multiset: this value must never change
        // across processes, platforms, or refactors, or persisted checksums
        // would all report corruption after an upgrade.
        let rows = vec![
            row(vec![
                Value::str("austin"),
                Value::Int(42),
                Value::Float(0.25),
            ]),
            row(vec![Value::Null, Value::Bool(true), Value::str("x")]),
        ];
        let c = checksum_rows(&rows);
        assert_eq!(c, checksum_rows(&rows.clone()));
        assert_eq!(format!("{c}").len(), 16);
        assert_eq!(c.0, 0xf73e_b8cd_f37b_530a, "checksum encoding changed");
    }
}
