//! The DW store: permanent/temporary table spaces and costed execution.

use crate::cost::DwCostModel;
use miso_common::guard::QueryGuard;
use miso_common::ids::NodeId;
use miso_common::{ByteSize, MisoError, Result, SimDuration};
use miso_data::checksum::{checksum_rows, corrupt_first_row, Checksum};
use miso_data::{ColBatch, Row, Schema};
use miso_exec::engine::{execute_subset_guarded, DataSource, ExecOptions, Execution};
use miso_exec::UdfRegistry;
use miso_plan::estimate::MapStats;
use miso_plan::{LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Which table space a relation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableSpace {
    /// Tuner-managed views: part of the physical design, survive queries.
    Permanent,
    /// Query-lifetime working sets: discarded when the query finishes.
    Temporary,
}

#[derive(Debug, Clone)]
struct StoredView {
    schema: Schema,
    rows: Arc<Vec<Row>>,
    size: ByteSize,
    /// Lazily pivoted columnar twin of `rows`, shared with the engine so
    /// repeated queries over the same view skip the pivot. `None` caches
    /// "ragged, not pivotable". Reset whenever `rows` is mutated
    /// (corruption injection), so the twin can never diverge.
    cols: OnceLock<Option<Arc<ColBatch>>>,
    /// Content checksum recorded at load time. Never updated by
    /// [`DwStore::corrupt_view`]/[`DwStore::corrupt_temp`] — verification
    /// compares the stored bytes against this load-time truth.
    checksum: Checksum,
}

/// The result of executing a (partial) plan in DW.
#[derive(Debug)]
pub struct DwRun {
    /// Row-level results for every executed node.
    pub execution: Execution,
    /// Simulated execution cost (excludes load costs, which the execution
    /// layer charges when it stages working sets).
    pub cost: SimDuration,
}

/// The simulated parallel data warehouse.
///
/// `Clone` is deliberate: the serving layer snapshots the store into an
/// immutable epoch image (row payloads are `Arc`-shared, so clones are cheap).
#[derive(Debug, Default, Clone)]
pub struct DwStore {
    permanent: HashMap<String, StoredView>,
    temporary: HashMap<String, StoredView>,
    /// Cost model (public so experiments can recalibrate).
    pub cost_model: DwCostModel,
}

impl DwStore {
    /// An empty store with the default cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads rows into the given table space, returning `(size, load cost)`.
    pub fn load_view(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Arc<Vec<Row>>,
        space: TableSpace,
    ) -> (ByteSize, SimDuration) {
        let size = ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum());
        let cost = self.cost_model.load_cost(size);
        let checksum = checksum_rows(&rows);
        let stored = StoredView {
            schema,
            rows,
            size,
            checksum,
            cols: OnceLock::new(),
        };
        match space {
            TableSpace::Permanent => self.permanent.insert(name.to_string(), stored),
            TableSpace::Temporary => self.temporary.insert(name.to_string(), stored),
        };
        (size, cost)
    }

    /// Loads a permanent view whose size and content checksum the caller
    /// computed incrementally (the IVM maintenance path): nothing here
    /// re-scans the rows, keeping a delta apply O(|delta|). The caller is
    /// responsible for `checksum` being the exact [`checksum_rows`] value
    /// of `rows`.
    pub fn load_view_with_checksum(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Arc<Vec<Row>>,
        size: ByteSize,
        checksum: Checksum,
    ) {
        self.permanent.insert(
            name.to_string(),
            StoredView {
                schema,
                rows,
                size,
                cols: OnceLock::new(),
                checksum,
            },
        );
    }

    /// Removes a permanent view, returning its contents for migration.
    pub fn evict_view(&mut self, name: &str) -> Option<(Schema, Arc<Vec<Row>>, ByteSize)> {
        self.permanent
            .remove(name)
            .map(|v| (v.schema, v.rows, v.size))
    }

    /// Drops all temporary tables (end of a multistore query).
    pub fn clear_temp(&mut self) {
        self.temporary.clear();
    }

    /// Promotes a staged temporary table into the permanent space under
    /// `name`, returning its size. Crash-safe reorganization stages incoming
    /// views into temp space and flips them to permanent only at commit; a
    /// crash before the flip loses only the (volatile) staged copy. Returns
    /// `None` when the staged table is missing (e.g. wiped by a crash).
    pub fn promote_temp(&mut self, staged: &str, name: &str) -> Option<ByteSize> {
        let v = self.temporary.remove(staged)?;
        let size = v.size;
        self.permanent.insert(name.to_string(), v);
        Some(size)
    }

    /// Whether a temporary table is present (staged working set or reorg
    /// staging copy).
    pub fn has_temp(&self, name: &str) -> bool {
        self.temporary.contains_key(name)
    }

    /// Whether a *permanent* view is present (the physical design).
    pub fn has_view(&self, name: &str) -> bool {
        self.permanent.contains_key(name)
    }

    /// A permanent view's size.
    pub fn view_size(&self, name: &str) -> Option<ByteSize> {
        self.permanent.get(name).map(|v| v.size)
    }

    /// A permanent view's rows.
    pub fn view_rows_arc(&self, name: &str) -> Option<Arc<Vec<Row>>> {
        self.permanent.get(name).map(|v| v.rows.clone())
    }

    /// A permanent view's schema.
    pub fn view_schema(&self, name: &str) -> Option<&Schema> {
        self.permanent.get(name).map(|v| &v.schema)
    }

    /// A permanent view's load-time content checksum.
    pub fn view_checksum(&self, name: &str) -> Option<Checksum> {
        self.permanent.get(name).map(|v| v.checksum)
    }

    /// Recomputes a permanent view's checksum and compares it to
    /// `expected`; `None` when absent. Reads every row — callers charge
    /// scrub/verify cost accordingly.
    pub fn verify_view(&self, name: &str, expected: Checksum) -> Option<bool> {
        self.permanent
            .get(name)
            .map(|v| checksum_rows(&v.rows) == expected)
    }

    /// Recomputes a temporary table's checksum (staged working set or
    /// reorg staging copy) and compares it to `expected`; `None` when
    /// absent.
    pub fn verify_temp(&self, name: &str, expected: Checksum) -> Option<bool> {
        self.temporary
            .get(name)
            .map(|v| checksum_rows(&v.rows) == expected)
    }

    /// Silently flips a value in a permanent view's first row (chaos
    /// corruption); the recorded checksum is left untouched. Returns
    /// whether anything changed.
    pub fn corrupt_view(&mut self, name: &str) -> bool {
        let Some(view) = self.permanent.get_mut(name) else {
            return false;
        };
        view.cols = OnceLock::new();
        corrupt_first_row(&mut view.rows)
    }

    /// Silently flips a value in a temporary table's first row (a torn
    /// transfer of a working set or staging copy).
    pub fn corrupt_temp(&mut self, name: &str) -> bool {
        let Some(view) = self.temporary.get_mut(name) else {
            return false;
        };
        view.cols = OnceLock::new();
        corrupt_first_row(&mut view.rows)
    }

    /// Temporary table names (sorted) — must be empty between queries and
    /// outside reorganizations; the auditor checks for dangling entries.
    pub fn temp_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.temporary.keys().cloned().collect();
        names.sort();
        names
    }

    /// Total permanent view bytes (checked against `B_d` by the tuner).
    pub fn total_view_bytes(&self) -> ByteSize {
        self.permanent.values().map(|v| v.size).sum()
    }

    /// Permanent view names (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.permanent.keys().cloned().collect();
        names.sort();
        names
    }

    /// Registers permanent view sizes into an estimation stats source.
    pub fn fill_stats(&self, stats: &mut MapStats) {
        for (name, view) in &self.permanent {
            stats.set_view(
                name.clone(),
                view.rows.len() as f64,
                view.size.as_bytes() as f64,
            );
        }
    }

    /// Executes `subset` of `plan` in DW with pre-staged working sets.
    ///
    /// `provided` maps cut-node ids to their transferred rows (already loaded
    /// into temp space by the execution layer; load cost is charged there).
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<NodeId>>,
        provided: HashMap<NodeId, Arc<Vec<Row>>>,
        udfs: &UdfRegistry,
    ) -> Result<DwRun> {
        self.execute_guarded(plan, subset, provided, udfs, QueryGuard::inert_ref())
    }

    /// [`DwStore::execute`] under a [`QueryGuard`]: the engine checks the
    /// guard at every morsel-dispatch boundary and charges materializations
    /// and join/aggregate scratch against its memory budget. Injected
    /// `stall` faults inflate the charged cost past any sane deadline;
    /// `hog` faults inflate the query's charged bytes by their factor.
    pub fn execute_guarded(
        &self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<NodeId>>,
        provided: HashMap<NodeId, Arc<Vec<Row>>>,
        udfs: &UdfRegistry,
        guard: &QueryGuard,
    ) -> Result<DwRun> {
        let mut obs = miso_obs::span("dw.execute");
        // Fault injection: one relaxed atomic load when chaos is disabled.
        let mut chaos_slow = 1.0f64;
        let mut hog_factor = 1.0f64;
        match miso_chaos::hit("dw.execute") {
            miso_chaos::Action::Proceed => {}
            miso_chaos::Action::Fail => {
                return Err(MisoError::transient("dw", "injected DW outage"));
            }
            miso_chaos::Action::Crash => return Err(MisoError::crash("dw", "dw.execute")),
            miso_chaos::Action::Delay(f) => chaos_slow = f,
            miso_chaos::Action::Stall => chaos_slow = miso_chaos::STALL_FACTOR,
            miso_chaos::Action::Hog(f) => hog_factor = f,
            // Corruption targets stored copies (view_read points), not
            // execution: a corrupt action here is a no-op.
            miso_chaos::Action::Corrupt => {}
        }
        // DW cannot scan raw logs or run UDFs.
        for node in plan.nodes() {
            let in_subset = subset.is_none_or(|s| s.contains(&node.id));
            if !in_subset || provided.contains_key(&node.id) {
                continue;
            }
            match &node.op {
                Operator::ScanLog { log } => {
                    return Err(MisoError::Store(format!("DW cannot scan raw log `{log}`")));
                }
                Operator::Udf { name, .. } => {
                    return Err(MisoError::Store(format!("DW cannot execute UDF `{name}`")));
                }
                Operator::ScanView { view, .. }
                    if !self.permanent.contains_key(view) && !self.temporary.contains_key(view) =>
                {
                    return Err(MisoError::Store(format!("DW has no view `{view}`")));
                }
                _ => {}
            }
        }
        // Bytes of provided working sets are read from temp space.
        let mut bytes_in: ByteSize = provided
            .values()
            .map(|rows| ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum()))
            .sum();
        let provided_ids: HashSet<NodeId> = provided.keys().copied().collect();
        // DW only ever reads the root rows and per-node row counts, so let
        // the engine release intermediate outputs eagerly (and steal
        // uniquely-owned inputs) instead of retaining every materialization.
        let execution = execute_subset_guarded(
            plan,
            subset,
            provided,
            self,
            udfs,
            ExecOptions {
                retain_root_only: true,
                ..ExecOptions::default()
            },
            guard,
        )?;
        if hog_factor > 1.0 && guard.is_active() {
            // Injected memory hog: transiently charge (factor - 1)× the root
            // output bytes. Over-budget queries die with `ResourceExhausted`;
            // surviving hogs still move the peak gauge before releasing.
            let real = execution
                .executed_nodes()
                .map(|id| execution.output_bytes(id).as_bytes())
                .sum::<u64>();
            let extra = ((hog_factor - 1.0) * real as f64) as u64;
            guard.try_charge(extra)?;
            guard.release(extra);
        }
        let mut rows_processed = 0u64;
        for node in plan.nodes() {
            let in_subset = subset.is_none_or(|s| s.contains(&node.id));
            if !in_subset || provided_ids.contains(&node.id) {
                continue;
            }
            if let Operator::ScanView { view, .. } = &node.op {
                let size = self
                    .permanent
                    .get(view)
                    .or_else(|| self.temporary.get(view))
                    .map(|v| v.size)
                    .unwrap_or(ByteSize::ZERO);
                bytes_in += size;
            }
            rows_processed += execution.rows_out(node.id).unwrap_or(0);
        }
        let mut cost = self.cost_model.exec_cost(bytes_in, rows_processed);
        if chaos_slow != 1.0 {
            // Injected contention spike: the whole statement runs slower.
            cost = cost * chaos_slow;
        }
        if obs.is_active() {
            obs.push_field("bytes_in", miso_obs::FieldValue::U64(bytes_in.as_bytes()));
            obs.push_field("rows", miso_obs::FieldValue::U64(rows_processed));
            obs.push_field("cost_us", miso_obs::FieldValue::U64(cost.as_micros()));
            miso_obs::count("dw.bytes_scanned", bytes_in.as_bytes());
        }
        Ok(DwRun { execution, cost })
    }

    /// What-if cost probe: estimated DW execution cost of a plan given
    /// hypothetical resident view sizes (no execution). Mirrors the paper's
    /// use of the DW's what-if optimizer interface.
    pub fn what_if_cost(
        &self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<NodeId>>,
        estimates: &HashMap<NodeId, miso_plan::estimate::SizeEstimate>,
    ) -> SimDuration {
        let mut bytes_in = 0.0f64;
        let mut rows = 0.0f64;
        for node in plan.nodes() {
            let in_subset = subset.is_none_or(|s| s.contains(&node.id));
            if !in_subset {
                continue;
            }
            if let Some(est) = estimates.get(&node.id) {
                if matches!(node.op, Operator::ScanView { .. }) {
                    bytes_in += est.bytes;
                }
                rows += est.rows;
            }
        }
        self.cost_model
            .exec_cost(ByteSize::from_bytes(bytes_in as u64), rows as u64)
    }

    /// Load cost helper (used by the execution layer for working sets).
    pub fn load_cost(&self, bytes: ByteSize) -> SimDuration {
        self.cost_model.load_cost(bytes)
    }
}

impl DataSource for DwStore {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        Err(MisoError::Store(format!(
            "DW cannot scan raw log `{log}` (logs live in HV)"
        )))
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.permanent
            .get(view)
            .or_else(|| self.temporary.get(view))
            .map(|v| v.rows.as_slice())
            .ok_or_else(|| MisoError::Store(format!("DW has no view `{view}`")))
    }

    fn view_rows_shared(&self, view: &str) -> Option<Arc<Vec<Row>>> {
        self.permanent
            .get(view)
            .or_else(|| self.temporary.get(view))
            .map(|v| v.rows.clone())
    }

    fn view_cols_shared(&self, view: &str) -> Option<Arc<ColBatch>> {
        let v = self
            .permanent
            .get(view)
            .or_else(|| self.temporary.get(view))?;
        v.cols
            .get_or_init(|| ColBatch::from_rows(&v.rows).map(Arc::new))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::{DataType, Field, Value};

    fn rows(n: i64) -> Arc<Vec<Row>> {
        Arc::new(
            (0..n)
                .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 7)]))
                .collect(),
        )
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("k", DataType::Int),
        ])
    }

    #[test]
    fn load_and_query_view() {
        let mut dw = DwStore::new();
        let (size, load_cost) = dw.load_view("v_a", schema(), rows(20_000), TableSpace::Permanent);
        assert!(size.as_bytes() > 0);
        assert!(load_cost > SimDuration::ZERO);
        assert!(dw.has_view("v_a"));

        let mut b = miso_plan::PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v_a".into(),
                    schema: schema(),
                },
                vec![],
            )
            .unwrap();
        let f = b
            .add(
                Operator::Filter {
                    predicate: miso_plan::Expr::col(1).eq(miso_plan::Expr::lit(3i64)),
                },
                vec![sv],
            )
            .unwrap();
        let plan = b.finish(f).unwrap();
        let run = dw
            .execute(&plan, None, HashMap::new(), &UdfRegistry::new())
            .unwrap();
        assert!(!run.execution.root_rows().unwrap().is_empty());
        assert!(
            run.cost < load_cost,
            "resident queries are cheap; loads are not"
        );
    }

    #[test]
    fn temp_space_is_cleared() {
        let mut dw = DwStore::new();
        dw.load_view("ws", schema(), rows(10), TableSpace::Temporary);
        assert!(!dw.has_view("ws"), "temp tables are not part of the design");
        assert_eq!(dw.total_view_bytes(), ByteSize::ZERO);
        assert!(dw.view_rows("ws").is_ok());
        dw.clear_temp();
        assert!(dw.view_rows("ws").is_err());
    }

    #[test]
    fn rejects_raw_logs_and_udfs() {
        let dw = DwStore::new();
        let mut b = miso_plan::PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let plan = b.finish(scan).unwrap();
        assert!(dw
            .execute(&plan, None, HashMap::new(), &UdfRegistry::new())
            .is_err());

        let mut b2 = miso_plan::PlanBuilder::new();
        let sv = b2
            .add(
                Operator::ScanView {
                    view: "v".into(),
                    schema: schema(),
                },
                vec![],
            )
            .unwrap();
        let u = b2
            .add(
                Operator::Udf {
                    name: "u".into(),
                    output: schema(),
                },
                vec![sv],
            )
            .unwrap();
        let plan2 = b2.finish(u).unwrap();
        assert!(dw
            .execute(&plan2, None, HashMap::new(), &UdfRegistry::new())
            .is_err());
    }

    #[test]
    fn provided_working_sets_execute_without_views() {
        let dw = DwStore::new();
        // Plan: scan log -> filter; we provide the scan output, DW runs the
        // filter.
        let mut b = miso_plan::PlanBuilder::new();
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: miso_plan::Expr::col(0)
                        .get("k")
                        .cast(DataType::Int)
                        .eq(miso_plan::Expr::lit(1i64)),
                },
                vec![scan],
            )
            .unwrap();
        let plan = b.finish(filt).unwrap();
        let ws: Arc<Vec<Row>> = Arc::new(vec![
            Row::new(vec![Value::object(vec![("k".into(), Value::Int(1))])]),
            Row::new(vec![Value::object(vec![("k".into(), Value::Int(2))])]),
        ]);
        let provided: HashMap<NodeId, Arc<Vec<Row>>> = [(NodeId(0), ws)].into_iter().collect();
        let subset: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        let run = dw
            .execute(&plan, Some(&subset), provided, &UdfRegistry::new())
            .unwrap();
        assert_eq!(run.execution.root_rows().unwrap().len(), 1);
    }

    #[test]
    fn promote_temp_flips_staged_table_into_design() {
        let mut dw = DwStore::new();
        dw.load_view("reorg_stage_v", schema(), rows(8), TableSpace::Temporary);
        assert!(dw.has_temp("reorg_stage_v"));
        assert!(!dw.has_view("v"));
        let size = dw.promote_temp("reorg_stage_v", "v").unwrap();
        assert!(size.as_bytes() > 0);
        assert!(dw.has_view("v"), "promoted into the permanent design");
        assert!(!dw.has_temp("reorg_stage_v"));
        assert_eq!(dw.total_view_bytes(), size);
        // A crash-wiped staging table promotes to nothing.
        dw.clear_temp();
        assert!(dw.promote_temp("missing", "w").is_none());
        assert!(!dw.has_view("w"));
    }

    #[test]
    fn checksums_survive_promotion_and_catch_corruption() {
        let mut dw = DwStore::new();
        dw.load_view("reorg_stage_v", schema(), rows(8), TableSpace::Temporary);
        let expected = checksum_rows(&rows(8));
        assert_eq!(dw.verify_temp("reorg_stage_v", expected), Some(true));
        dw.promote_temp("reorg_stage_v", "v").unwrap();
        assert_eq!(dw.view_checksum("v"), Some(expected));
        assert_eq!(dw.verify_view("v", expected), Some(true));

        assert!(dw.corrupt_view("v"));
        assert_eq!(
            dw.view_checksum("v"),
            Some(expected),
            "corruption is silent"
        );
        assert_eq!(dw.verify_view("v", expected), Some(false));
        assert_eq!(dw.verify_view("missing", expected), None);

        dw.load_view("ws", schema(), rows(3), TableSpace::Temporary);
        assert_eq!(dw.temp_names(), vec!["ws".to_string()]);
        assert!(dw.corrupt_temp("ws"));
        assert_eq!(dw.verify_temp("ws", checksum_rows(&rows(3))), Some(false));
        assert!(!dw.corrupt_temp("missing"));
        dw.clear_temp();
        assert!(dw.temp_names().is_empty());
    }

    #[test]
    fn eviction_returns_contents() {
        let mut dw = DwStore::new();
        dw.load_view("v_b", schema(), rows(5), TableSpace::Permanent);
        let (s, r, size) = dw.evict_view("v_b").unwrap();
        assert_eq!(s, schema());
        assert_eq!(r.len(), 5);
        assert!(size.as_bytes() > 0);
        assert!(!dw.has_view("v_b"));
        assert!(dw.evict_view("v_b").is_none());
    }

    #[test]
    fn what_if_uses_estimates_not_contents() {
        let dw = DwStore::new();
        let mut b = miso_plan::PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v_hyp".into(),
                    schema: schema(),
                },
                vec![],
            )
            .unwrap();
        let plan = b.finish(sv).unwrap();
        let mut est = HashMap::new();
        est.insert(
            NodeId(0),
            miso_plan::estimate::SizeEstimate {
                rows: 1000.0,
                bytes: 64_000.0,
            },
        );
        let small = dw.what_if_cost(&plan, None, &est);
        est.insert(
            NodeId(0),
            miso_plan::estimate::SizeEstimate {
                rows: 1e6,
                bytes: 64e6,
            },
        );
        let big = dw.what_if_cost(&plan, None, &est);
        assert!(big > small);
    }
}
