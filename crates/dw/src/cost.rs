//! The DW cost model.
//!
//! Mirrors the structure of the HV model but with warehouse characteristics:
//! negligible per-query startup, per-byte scan rates two-plus orders of
//! magnitude faster than HV's effective MapReduce rates (columnar-ish layout,
//! compiled operators, no JVM spin-up), and an expensive load path — the
//! paper's whole tuning problem exists because moving data into DW costs so
//! much more than querying it there.

use miso_common::{ByteSize, SimDuration};

/// Cost parameters for the DW cluster.
#[derive(Debug, Clone)]
pub struct DwCostModel {
    /// Cluster width (the paper's DW cluster has 9 nodes).
    pub nodes: u32,
    /// Per-query planning/dispatch latency.
    pub query_startup: SimDuration,
    /// Seconds per byte scanned from resident tables.
    pub read_secs_per_byte: f64,
    /// Seconds per row of operator processing.
    pub cpu_secs_per_row: f64,
    /// Seconds per byte loaded into a table (parse + partition + write +
    /// index maintenance). Dominates everything else by design.
    pub load_secs_per_byte: f64,
}

impl Default for DwCostModel {
    fn default() -> Self {
        DwCostModel::paper_default()
    }
}

impl DwCostModel {
    /// Calibrated against the standard synthetic corpus (see `DESIGN.md` §5).
    pub fn paper_default() -> Self {
        DwCostModel {
            nodes: 9,
            query_startup: SimDuration::from_millis(300),
            read_secs_per_byte: 1.6e-6,
            cpu_secs_per_row: 3.0e-5,
            load_secs_per_byte: 0.9e-4,
        }
    }

    /// Cost of executing over `bytes_in` resident bytes and `rows_processed`
    /// operator-rows.
    pub fn exec_cost(&self, bytes_in: ByteSize, rows_processed: u64) -> SimDuration {
        self.query_startup
            + SimDuration::from_secs_f64(
                bytes_in.as_bytes() as f64 * self.read_secs_per_byte
                    + rows_processed as f64 * self.cpu_secs_per_row,
            )
    }

    /// Cost of loading `bytes` into a table (temp or permanent).
    pub fn load_cost(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 * self.load_secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_hv::HvCostModel;

    #[test]
    fn dw_is_much_faster_than_hv_per_byte() {
        let dw = DwCostModel::paper_default();
        let hv = HvCostModel::paper_default();
        assert!(
            hv.read_secs_per_byte / dw.read_secs_per_byte > 50.0,
            "the paper's asymmetry must be wide"
        );
    }

    #[test]
    fn loading_dominates_scanning() {
        let dw = DwCostModel::paper_default();
        let b = ByteSize::from_mib(5);
        assert!(dw.load_cost(b) > dw.exec_cost(b, 0) * 20.0);
    }

    #[test]
    fn exec_cost_has_small_startup() {
        let dw = DwCostModel::paper_default();
        let idle = dw.exec_cost(ByteSize::ZERO, 0);
        assert!(idle.as_secs_f64() < 1.0);
        assert!(idle > SimDuration::ZERO);
    }

    #[test]
    fn resident_query_is_seconds_not_thousands() {
        // A query over a ~1 MiB resident working set should land in seconds
        // (paper Fig 5b: most DW queries < 10 s).
        let dw = DwCostModel::paper_default();
        let c = dw.exec_cost(ByteSize::from_mib(1), 50_000);
        assert!(c.as_secs_f64() < 10.0, "got {c}");
    }
}
