//! DW — the simulated parallel data warehouse.
//!
//! The paper's DW is "a widely-used, mature commercial parallel database
//! (row-store) with horizontal data partitioning" on 9 nodes. The properties
//! MISO depends on, reproduced here:
//!
//! 1. **Speed asymmetry.** Once data is resident, DW executes "faster by a
//!    very wide margin" — our [`cost::DwCostModel`] is orders of magnitude
//!    faster per byte than HV's, with negligible startup.
//! 2. **Expensive ingest.** Loading (transfer staging → parse → partition →
//!    index) is the dominant cost of getting data *into* DW; it's what makes
//!    up-front ETL unattractive and split-point choice critical.
//! 3. **Two table spaces.** Working sets migrated during query execution
//!    land in *temporary* table space and are discarded at query end; views
//!    migrated by the tuner land in *permanent* table space and become part
//!    of the physical design (paper §3.1).
//! 4. **A what-if interface.** [`store::DwStore::what_if_cost`] costs a plan
//!    against a hypothetical design, which the MISO tuner probes during
//!    reorganization.
//! 5. **Limited spare capacity.** [`background`] models a resident reporting
//!    workload consuming a fixed share of IO or CPU, the mutual-interference
//!    setting of the paper's §5.4 (Figure 9, Table 2).

pub mod background;
pub mod cost;
pub mod store;

pub use background::{BackgroundSim, DwActivity, Resource};
pub use cost::DwCostModel;
pub use store::{DwRun, DwStore, TableSpace};
