//! Background reporting workload and resource interference.
//!
//! §5.4 of the paper evaluates MISO against a DW with *limited spare
//! capacity*: parameterized TPC-DS queries continuously consume a fixed
//! share of IO (template q3) or CPU (template q83), leaving 20% or 40%
//! spare. The paper then measures (a) how much the multistore workload slows
//! the reporting queries and (b) vice versa (Figure 9, Table 2).
//!
//! We model the DW cluster's two resources as capacity pools. The background
//! workload holds a constant demand; each multistore activity (query
//! execution in DW, working-set transfer, reorganization view transfer) adds
//! a characteristic demand while it runs:
//!
//! * when combined demand exceeds capacity, *both* sides stretch — the
//!   multistore activity's simulated duration inflates by the contention
//!   factor, and the background queries' average latency spikes for the
//!   duration (the R/T peaks of Figure 9);
//! * when the multistore side is idle in DW (the long Q stretches), the
//!   reporting workload runs at its base latency.
//!
//! The Table 2 numbers then *emerge* from the experiment timeline: average
//! reporting-query slowdown is time-weighted over the run, and multistore
//! slowdown is the ratio of stretched to unstretched DW-side time.

use miso_common::{SimDuration, SimInstant};

/// Which resource the background workload saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// IO-bound reporting workload (paper: TPC-DS q3 instances).
    Io,
    /// CPU-bound reporting workload (paper: TPC-DS q83 instances).
    Cpu,
}

/// What the multistore side is doing in DW during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DwActivity {
    /// No DW-side multistore work (HV-side execution or true idle).
    Idle,
    /// Executing query operators over resident data (the Q stretches).
    QueryExec,
    /// Loading a working set mid-query (the T peaks).
    WorkingSetTransfer,
    /// Reorganization-phase view movement (the R peaks).
    ViewTransfer,
}

/// Per-activity resource demand, as fractions of cluster capacity.
#[derive(Debug, Clone, Copy)]
pub struct Demand {
    /// IO fraction demanded.
    pub io: f64,
    /// CPU fraction demanded.
    pub cpu: f64,
}

impl DwActivity {
    /// *Sustained* (time-averaged) demand of this activity — what drives
    /// queueing delay for both sides over the interval.
    pub fn demand(&self) -> Demand {
        match self {
            DwActivity::Idle => Demand { io: 0.0, cpu: 0.0 },
            DwActivity::QueryExec => Demand {
                io: 0.03,
                cpu: 0.06,
            },
            DwActivity::WorkingSetTransfer => Demand {
                io: 0.09,
                cpu: 0.11,
            },
            DwActivity::ViewTransfer => Demand {
                io: 0.10,
                cpu: 0.12,
            },
        }
    }

    /// *Peak* (instantaneous burst) demand — transfers "in some instances
    /// consume 100% of the IO resources" (paper §5.4); this is what the
    /// Figure 9(a) utilization plot and the >5 s latency spikes show.
    pub fn peak_demand(&self) -> Demand {
        match self {
            DwActivity::Idle => Demand { io: 0.0, cpu: 0.0 },
            DwActivity::QueryExec => Demand {
                io: 0.15,
                cpu: 0.25,
            },
            DwActivity::WorkingSetTransfer => Demand { io: 0.9, cpu: 0.45 },
            DwActivity::ViewTransfer => Demand { io: 1.0, cpu: 0.5 },
        }
    }
}

/// One recorded timeline interval.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Interval start.
    pub start: SimInstant,
    /// Interval length (after contention stretching).
    pub duration: SimDuration,
    /// The multistore activity during the interval.
    pub activity: DwActivity,
    /// Total IO utilization (background + multistore), clamped to 1.
    pub io_util: f64,
    /// Total CPU utilization, clamped to 1.
    pub cpu_util: f64,
    /// Average background-query latency during the interval.
    pub bg_latency: SimDuration,
}

/// The background-workload simulator.
#[derive(Debug, Clone)]
pub struct BackgroundSim {
    /// Saturated resource.
    pub resource: Resource,
    /// Spare fraction of that resource (0.2 or 0.4 in the paper).
    pub spare: f64,
    /// Base reporting-query latency with no multistore interference
    /// (paper: 1.06 s for q3).
    pub base_latency: SimDuration,
    samples: Vec<Sample>,
}

impl BackgroundSim {
    /// A background workload leaving `spare` fraction of `resource`.
    pub fn new(resource: Resource, spare: f64, base_latency: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&spare), "spare must be a fraction");
        BackgroundSim {
            resource,
            spare,
            base_latency,
            samples: Vec::new(),
        }
    }

    /// The paper's four §5.4 configurations.
    pub fn paper_config(resource: Resource, spare_percent: u32) -> Self {
        BackgroundSim::new(
            resource,
            spare_percent as f64 / 100.0,
            SimDuration::from_secs_f64(1.06),
        )
    }

    /// Background demand on (io, cpu).
    fn background_demand(&self) -> Demand {
        let busy = 1.0 - self.spare;
        match self.resource {
            // The off-resource still sees light usage from the reporting
            // queries.
            Resource::Io => Demand { io: busy, cpu: 0.2 },
            Resource::Cpu => Demand { io: 0.2, cpu: busy },
        }
    }

    /// Shared queueing-delay factor (M/M/1-flavoured): how much slower work
    /// proceeds in the bottleneck when `extra` demand joins the background.
    fn contention_factor(&self, extra: Demand, cap: f64) -> f64 {
        let bg = self.background_demand();
        let util_io = bg.io + extra.io;
        let util_cpu = bg.cpu + extra.cpu;
        let util = util_io.max(util_cpu);
        let base_util = bg.io.max(bg.cpu);
        ((1.0 - base_util.min(0.95)) / (1.0 - util.min(0.95))).clamp(1.0, cap)
    }

    /// The factor by which a multistore activity's duration stretches under
    /// contention (≥ 1). Both sides share the bottleneck, so this is the
    /// same queueing factor that inflates the reporting queries.
    pub fn stretch_factor(&self, activity: DwActivity) -> f64 {
        self.contention_factor(activity.demand(), 3.0)
    }

    /// Time-averaged background-query latency while `activity` runs
    /// (sustained demand).
    pub fn bg_latency_during(&self, activity: DwActivity) -> SimDuration {
        self.base_latency * self.contention_factor(activity.demand(), 6.0)
    }

    /// Peak background-query latency during `activity`'s bursts (the >5 s
    /// spikes of Figure 9b).
    pub fn bg_latency_peak(&self, activity: DwActivity) -> SimDuration {
        self.base_latency * self.contention_factor(activity.peak_demand(), 6.0)
    }

    /// Records an interval of multistore activity (call with the *stretched*
    /// duration).
    pub fn record(&mut self, start: SimInstant, duration: SimDuration, activity: DwActivity) {
        if duration.is_zero() {
            return;
        }
        let bg = self.background_demand();
        let peak = activity.peak_demand();
        self.samples.push(Sample {
            start,
            duration,
            activity,
            io_util: (bg.io + peak.io).min(1.0),
            cpu_util: (bg.cpu + peak.cpu).min(1.0),
            bg_latency: self.bg_latency_during(activity),
        });
    }

    /// The recorded timeline.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Time-weighted average background-query latency over the run.
    pub fn avg_bg_latency(&self) -> SimDuration {
        let total: f64 = self.samples.iter().map(|s| s.duration.as_secs_f64()).sum();
        if total == 0.0 {
            return self.base_latency;
        }
        let weighted: f64 = self
            .samples
            .iter()
            .map(|s| s.duration.as_secs_f64() * s.bg_latency.as_secs_f64())
            .sum();
        SimDuration::from_secs_f64(weighted / total)
    }

    /// Average background slowdown in percent (Table 2, "DW Queries").
    pub fn bg_slowdown_percent(&self) -> f64 {
        (self.avg_bg_latency().as_secs_f64() / self.base_latency.as_secs_f64() - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim40io() -> BackgroundSim {
        BackgroundSim::paper_config(Resource::Io, 40)
    }

    #[test]
    fn idle_has_no_stretch_or_inflation() {
        let sim = sim40io();
        assert_eq!(sim.stretch_factor(DwActivity::Idle), 1.0);
        assert_eq!(sim.bg_latency_during(DwActivity::Idle), sim.base_latency);
    }

    #[test]
    fn transfers_stretch_more_than_query_exec() {
        let sim = BackgroundSim::paper_config(Resource::Io, 20);
        let q = sim.stretch_factor(DwActivity::QueryExec);
        let t = sim.stretch_factor(DwActivity::WorkingSetTransfer);
        let r = sim.stretch_factor(DwActivity::ViewTransfer);
        assert!(q <= t && t <= r, "q={q} t={t} r={r}");
        assert!(r > 1.0);
    }

    #[test]
    fn less_spare_means_more_stretch() {
        let s40 = BackgroundSim::paper_config(Resource::Io, 40);
        let s20 = BackgroundSim::paper_config(Resource::Io, 20);
        assert!(
            s20.stretch_factor(DwActivity::ViewTransfer)
                >= s40.stretch_factor(DwActivity::ViewTransfer)
        );
    }

    #[test]
    fn transfer_latency_peaks_several_x_base() {
        let sim = sim40io();
        let peak = sim.bg_latency_peak(DwActivity::ViewTransfer);
        let ratio = peak.as_secs_f64() / sim.base_latency.as_secs_f64();
        assert!(
            ratio > 4.0,
            "Figure 9b peaks exceed 5 s from 1.06 s; got ratio {ratio}"
        );
        // Sustained inflation is much milder than the burst peaks.
        let sustained = sim.bg_latency_during(DwActivity::ViewTransfer);
        assert!(sustained < peak);
    }

    #[test]
    fn avg_slowdown_is_small_when_transfers_are_brief() {
        let mut sim = sim40io();
        let t0 = SimInstant::EPOCH;
        // 98% idle/query time, 2% transfer time — the paper's shape.
        sim.record(t0, SimDuration::from_secs(9_800), DwActivity::Idle);
        sim.record(t0, SimDuration::from_secs(100), DwActivity::QueryExec);
        sim.record(
            t0,
            SimDuration::from_secs(100),
            DwActivity::WorkingSetTransfer,
        );
        let pct = sim.bg_slowdown_percent();
        assert!(pct > 0.0 && pct < 10.0, "got {pct}%");
    }

    #[test]
    fn empty_timeline_reports_base_latency() {
        let sim = sim40io();
        assert_eq!(sim.avg_bg_latency(), sim.base_latency);
        assert_eq!(sim.bg_slowdown_percent(), 0.0);
    }

    #[test]
    fn cpu_background_stresses_cpu_activities() {
        let sim = BackgroundSim::paper_config(Resource::Cpu, 20);
        // CPU-bound background: even query exec contends a little on CPU.
        assert!(sim.stretch_factor(DwActivity::QueryExec) >= 1.0);
        let s = sim.stretch_factor(DwActivity::ViewTransfer);
        assert!((1.0..=3.0).contains(&s));
    }

    #[test]
    fn record_skips_zero_durations() {
        let mut sim = sim40io();
        sim.record(SimInstant::EPOCH, SimDuration::ZERO, DwActivity::QueryExec);
        assert!(sim.samples().is_empty());
    }
}
