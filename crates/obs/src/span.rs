//! RAII span guards with thread-local parent tracking.
//!
//! A [`Span`] opened while another span is live on the same thread becomes
//! its child; the parent id is recorded on both the start and end events so
//! trace consumers can rebuild the tree (query → optimize → split → exec…)
//! without relying on event order.

use crate::sink::{Event, EventKind, FieldValue};
use std::cell::RefCell;

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span id on this thread (0 = none).
pub(crate) fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An open trace span. Dropping the guard emits the end event carrying the
/// wall duration, the optional simulated timestamp, and all fields attached
/// through the builder methods.
///
/// When observability is disabled the guard is inert: construction and drop
/// touch nothing beyond one atomic load.
pub struct Span {
    id: u64,
    name: &'static str,
    parent: u64,
    start_ns: u64,
    sim_us: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
    active: bool,
}

impl Span {
    /// Opens a span (see [`crate::span`]).
    pub(crate) fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span {
                id: 0,
                name,
                parent: 0,
                start_ns: 0,
                sim_us: None,
                fields: Vec::new(),
                active: false,
            };
        }
        let id = crate::next_span_id();
        let parent = current_span_id();
        let start_ns = crate::mono_ns();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        crate::record_event(&Event {
            kind: EventKind::SpanStart,
            name,
            span: id,
            parent,
            t_mono_ns: start_ns,
            dur_ns: 0,
            sim_us: None,
            fields: Vec::new(),
        });
        Span {
            id,
            name,
            parent,
            start_ns,
            sim_us: None,
            fields: Vec::new(),
            active: true,
        }
    }

    /// Whether this guard will emit events (observability was enabled at
    /// creation).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches the simulated-clock timestamp (microseconds since the
    /// experiment epoch) to the end event.
    pub fn sim_us(mut self, us: u64) -> Self {
        if self.active {
            self.sim_us = Some(us);
        }
        self
    }

    /// Attaches an unsigned integer field.
    pub fn field_u64(mut self, key: &'static str, value: u64) -> Self {
        self.push_field(key, FieldValue::U64(value));
        self
    }

    /// Attaches a float field.
    pub fn field_f64(mut self, key: &'static str, value: f64) -> Self {
        self.push_field(key, FieldValue::F64(value));
        self
    }

    /// Attaches a string field.
    pub fn field_str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        if self.active {
            self.fields.push((key, FieldValue::Str(value.into())));
        }
        self
    }

    /// Attaches a field after construction (for values known only at the
    /// end of the spanned region).
    pub fn push_field(&mut self, key: &'static str, value: FieldValue) {
        if self.active {
            self.fields.push((key, value));
        }
    }

    /// Records the simulated timestamp after construction.
    pub fn set_sim_us(&mut self, us: u64) {
        if self.active {
            self.sim_us = Some(us);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Usually the top of the stack; scan back for robustness when a
            // span is moved across threads or dropped out of order.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&x| x == self.id) {
                stack.remove(pos);
            }
        });
        let end_ns = crate::mono_ns();
        crate::record_event(&Event {
            kind: EventKind::SpanEnd,
            name: self.name,
            span: self.id,
            parent: self.parent,
            t_mono_ns: end_ns,
            dur_ns: end_ns.saturating_sub(self.start_ns),
            sim_us: self.sim_us,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::sink::{EventKind, RingSink};
    use crate::{init, set_sink, span, ObsConfig};
    use std::sync::Arc;

    #[test]
    fn nesting_records_parent_ids() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(64));
        let ring = Arc::new(RingSink::new(64));
        set_sink(ring.clone());
        {
            let outer = span("outer");
            let outer_id = outer.id();
            {
                let inner = span("inner").field_u64("n", 3).sim_us(123);
                assert_eq!(inner.id(), outer_id + 1);
            }
        }
        let events = ring.events();
        // start(outer), start(inner), end(inner), end(outer)
        assert_eq!(events.len(), 4);
        let inner_end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == "inner")
            .unwrap();
        let outer_start = events
            .iter()
            .find(|e| e.kind == EventKind::SpanStart && e.name == "outer")
            .unwrap();
        assert_eq!(inner_end.parent, outer_start.span);
        assert_eq!(inner_end.sim_us, Some(123));
        assert_eq!(outer_start.parent, 0);
        let outer_end = events.last().unwrap();
        assert_eq!(outer_end.name, "outer");
        assert!(outer_end.dur_ns >= inner_end.dur_ns);
        init(ObsConfig::disabled());
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(64));
        let ring = Arc::new(RingSink::new(64));
        set_sink(ring.clone());
        {
            let _root = span("root");
            let a = span("a");
            drop(a);
            let b = span("b");
            drop(b);
        }
        let events = ring.events();
        let root_id = events.iter().find(|e| e.name == "root").unwrap().span;
        for name in ["a", "b"] {
            let e = events
                .iter()
                .find(|e| e.name == name && e.kind == EventKind::SpanEnd)
                .unwrap();
            assert_eq!(e.parent, root_id, "{name} is a child of root");
        }
        init(ObsConfig::disabled());
    }

    #[test]
    fn inert_span_emits_nothing() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::disabled());
        let ring = Arc::new(RingSink::new(8));
        set_sink(ring.clone());
        {
            let s = span("quiet").field_u64("x", 1);
            assert!(!s.is_active());
        }
        assert!(ring.events().is_empty());
    }
}
