//! Counters, gauges, and log-linear histograms behind a global registry.
//!
//! Metrics are keyed by `&'static str` names (dotted, e.g.
//! `optimizer.what_if_calls`); registration is implicit on first use. All
//! hot-path updates are single atomic RMW operations; the registry lock is
//! taken only on the first touch of each name and on snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Log-linear histogram over `u64` values.
///
/// Values below 16 get exact unit buckets; every power-of-two range above is
/// split into 8 linear sub-buckets, bounding relative quantile error at
/// ~6.25% (half a sub-bucket width, reported at bucket midpoints). This is
/// the classic HDR-style layout, sized at 496 fixed buckets so recording is
/// one atomic increment with no allocation.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

const LINEAR_CUTOFF: u64 = 16; // exact buckets below this
const SUB_BUCKETS: u64 = 8; // per power-of-two range
const NUM_BUCKETS: usize = (LINEAR_CUTOFF + (64 - 4) * SUB_BUCKETS) as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as u64; // >= 4
        let sub = (v >> (msb - 3)) - SUB_BUCKETS; // in [0, 8)
        (LINEAR_CUTOFF + (msb - 4) * SUB_BUCKETS + sub) as usize
    }
}

/// The midpoint of bucket `i` — the value quantile queries report.
fn bucket_mid(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_CUTOFF {
        i
    } else {
        let msb = 4 + (i - LINEAR_CUTOFF) / SUB_BUCKETS;
        let sub = (i - LINEAR_CUTOFF) % SUB_BUCKETS;
        let width = 1u64 << (msb - 3);
        (1u64 << msb) + sub * width + width / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]` (bucket midpoint; `0` on an
    /// empty histogram). `q = 0.5` is the median, `0.99` the p99.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * n), at least 1.
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_mid(i);
            }
        }
        self.max()
    }

    /// Clears all recorded values.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A read-only summary (count/sum/max + standard percentiles).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact maximum.
    pub max: u64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 90th percentile (bucket midpoint).
    pub p90: u64,
    /// 95th percentile (bucket midpoint).
    pub p95: u64,
    /// 99th percentile (bucket midpoint).
    pub p99: u64,
}

impl HistogramSummary {
    /// The (p50, p95, p99) tail triple — what latency renderers print.
    pub fn tail(&self) -> (u64, u64, u64) {
        (self.p50, self.p95, self.p99)
    }
}

/// The metric registry: name → atomic cell, implicit registration.
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>, // f64 bits
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter cell for `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("counter lock");
        map.entry(name).or_default().clone()
    }

    /// The gauge cell for `name` (stores `f64::to_bits`).
    pub fn gauge(&self, name: &'static str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().expect("gauge lock");
        map.entry(name).or_default().clone()
    }

    /// The histogram for `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram lock");
        map.entry(name).or_default().clone()
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter lock")
            .iter()
            .map(|(&k, v)| (k, v.load(Ordering::Relaxed)))
            .filter(|&(_, v)| v != 0)
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge lock")
            .iter()
            .map(|(&k, v)| (k, f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock")
            .iter()
            .map(|(&k, v)| (k, v.summary()))
            .filter(|(_, s)| s.count != 0)
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zeroes every metric (names stay registered).
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter lock").values() {
            c.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().expect("gauge lock").values() {
            g.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().expect("histogram lock").values() {
            h.reset();
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// A point-in-time copy of all metrics, for reports and assertions. Zeroed
/// counters and empty histograms are omitted.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<&'static str, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The (p50, p95, p99) triple of histogram `name`, if it recorded
    /// anything (empty histograms are omitted from snapshots).
    pub fn tail(&self, name: &str) -> Option<(u64, u64, u64)> {
        self.histograms.get(name).map(HistogramSummary::tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_common::DetRng;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1_000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "v={v} i={i}");
            assert!(i >= last, "monotone at v={v}");
            last = i;
        }
    }

    #[test]
    fn bucket_midpoint_stays_within_bucket() {
        for i in 0..NUM_BUCKETS {
            let mid = bucket_mid(i);
            assert_eq!(bucket_index(mid), i, "midpoint of bucket {i} maps back");
        }
    }

    #[test]
    fn exact_below_linear_cutoff() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.count(), 16);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.max(), 15);
    }

    /// Percentiles must track exact quantiles within the log-linear error
    /// bound on deterministic pseudo-random data.
    #[test]
    fn percentiles_match_exact_quantiles_on_rng_data() {
        let mut rng = DetRng::new(0xC0FFEE);
        let h = Histogram::new();
        let mut values: Vec<u64> = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            // Skewed mixture: mostly small latencies plus a heavy tail.
            let v = if rng.chance(0.9) {
                rng.range_inclusive(10, 5_000)
            } else {
                rng.range_inclusive(50_000, 5_000_000)
            };
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.10, 0.50, 0.90, 0.99, 0.999] {
            let exact = values
                [(((q * values.len() as f64).ceil() as usize).max(1) - 1).min(values.len() - 1)];
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 0.0625 + 1e-9,
                "q={q}: exact={exact} approx={approx} rel={rel:.4}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.summary().tail(), (0, 0, 0));
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::new();
        h.record(42);
        let s = h.summary();
        // 42 lands in a log-linear bucket; every percentile reports that
        // bucket's midpoint, and all three tail percentiles agree.
        assert_eq!(bucket_index(s.p50 as u64), bucket_index(42));
        assert_eq!(s.tail(), (s.p50, s.p50, s.p50));
        assert_eq!(s.max, 42);
    }

    #[test]
    fn percentiles_at_bucket_boundaries() {
        // Values below the linear cutoff (16) are exact: recording 0..=15
        // once each puts p50 at rank 8 → value 7 and p95 at rank 16 → 15.
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.p50, 7);
        assert_eq!(s.p95, 15);
        assert_eq!(s.p99, 15);
        // 16 is the first value that crosses into a shared log-linear
        // bucket; its reported quantile is that bucket's midpoint and must
        // map back to the same bucket.
        let hb = Histogram::new();
        hb.record(16);
        assert_eq!(bucket_index(hb.quantile(1.0)), bucket_index(16));
    }

    #[test]
    fn snapshot_tail_helper_resolves_histograms() {
        let r = Registry::new();
        r.histogram("lat").record(8);
        let snap = r.snapshot();
        assert_eq!(snap.tail("lat"), Some((8, 8, 8)));
        assert_eq!(snap.tail("missing"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(100);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn registry_snapshot_omits_zeroes() {
        let r = Registry::new();
        r.counter("a").fetch_add(3, Ordering::Relaxed);
        r.counter("zero"); // registered, never incremented
        r.histogram("h").record(7);
        r.histogram("empty");
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("a"), Some(&3));
        assert!(!snap.counters.contains_key("zero"));
        assert_eq!(snap.histograms["h"].count, 1);
        assert!(!snap.histograms.contains_key("empty"));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
    }
}
