//! Trace events and pluggable sinks.
//!
//! An [`Event`] is the unit of tracing: span starts/ends and standalone
//! instants, carrying a monotonic wall timestamp, an optional *simulated*
//! timestamp (the experiment clock), and typed key/value fields. Sinks
//! decide what happens to events: drop them ([`NoopSink`]), keep the last N
//! in memory ([`RingSink`]), or stream them as JSON lines ([`JsonlSink`]).

use miso_data::json::to_json;
use miso_data::Value;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed (carries duration and fields).
    SpanEnd,
    /// A standalone point event.
    Instant,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "event",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::U64(v) => {
                if *v <= i64::MAX as u64 {
                    Value::Int(*v as i64)
                } else {
                    Value::Float(*v as f64)
                }
            }
            FieldValue::I64(v) => Value::Int(*v),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Str(s) => Value::str(s.as_str()),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Start/end/instant.
    pub kind: EventKind,
    /// Span or event name (dotted taxonomy, e.g. `query.optimize`).
    pub name: &'static str,
    /// Id of the span this event belongs to (0 for unspanned instants).
    pub span: u64,
    /// Id of the enclosing span (0 = root).
    pub parent: u64,
    /// Monotonic wall nanoseconds since observability init.
    pub t_mono_ns: u64,
    /// Wall duration (SpanEnd only).
    pub dur_ns: u64,
    /// Simulated-clock microseconds, when the instrumented layer has one.
    pub sim_us: Option<u64>,
    /// Typed payload fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Encodes the event as one compact JSON object (the JSONL line format;
    /// see the run-report/trace schema in `README.md`).
    pub fn to_json_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("ev".into(), Value::str(self.kind.as_str())),
            ("name".into(), Value::str(self.name)),
            ("span".into(), Value::Int(self.span as i64)),
        ];
        if self.parent != 0 {
            obj.push(("parent".into(), Value::Int(self.parent as i64)));
        }
        obj.push(("t_ns".into(), Value::Int(self.t_mono_ns as i64)));
        if self.kind == EventKind::SpanEnd {
            obj.push(("dur_ns".into(), Value::Int(self.dur_ns as i64)));
        }
        if let Some(us) = self.sim_us {
            obj.push(("sim_us".into(), Value::Int(us as i64)));
        }
        if !self.fields.is_empty() {
            let fields: Vec<(String, Value)> = self
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect();
            obj.push(("fields".into(), Value::object(fields)));
        }
        Value::object(obj)
    }
}

/// Where events go. Implementations must be cheap and thread-safe: sinks are
/// called from the execution hot path whenever observability is enabled.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

/// Discards everything. The installed default; with the global enabled flag
/// off, instrumented code never even constructs events, so this sink only
/// sees traffic if someone enables observability without configuring a sink.
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in a fixed ring.
///
/// Lock-free-ish: writers claim a slot with one atomic fetch-add and lock
/// only that slot's mutex, so concurrent recorders contend only when they
/// collide on the same slot (capacity-separated writes never do).
pub struct RingSink {
    slots: Vec<Mutex<Option<Event>>>,
    next: AtomicUsize,
}

impl RingSink {
    /// A ring holding the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (not capped by capacity).
    pub fn recorded(&self) -> usize {
        self.next.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let n = self.next.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let start = n.saturating_sub(cap);
        (start..n)
            .filter_map(|i| self.slots[i % cap].lock().expect("ring slot").clone())
            .collect()
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[i].lock().expect("ring slot") = Some(event.clone());
    }
}

/// Streams events as JSON lines to a file (the `MISO_TRACE=<path>` sink).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) the trace file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = to_json(&event.to_json_value());
        let mut w = self.writer.lock().expect("jsonl writer");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl writer").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::json::parse_json;

    fn ev(name: &'static str, span: u64) -> Event {
        Event {
            kind: EventKind::SpanEnd,
            name,
            span,
            parent: 0,
            t_mono_ns: 1_000,
            dur_ns: 500,
            sim_us: Some(42),
            fields: vec![("rows", FieldValue::U64(7))],
        }
    }

    #[test]
    fn event_jsonl_round_trips_through_the_data_parser() {
        let line = to_json(&ev("query", 3).to_json_value());
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get_field("ev"), Some(&Value::str("span_end")));
        assert_eq!(v.get_field("name"), Some(&Value::str("query")));
        assert_eq!(v.get_field("dur_ns"), Some(&Value::Int(500)));
        assert_eq!(v.get_field("sim_us"), Some(&Value::Int(42)));
        assert_eq!(
            v.get_field("fields").unwrap().get_field("rows"),
            Some(&Value::Int(7))
        );
    }

    #[test]
    fn ring_wraparound_keeps_newest() {
        let ring = RingSink::new(4);
        for i in 0..10u64 {
            let mut e = ev("tick", i);
            e.t_mono_ns = i;
            ring.record(&e);
        }
        let events = ring.events();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(events.len(), 4);
        let ts: Vec<u64> = events.iter().map(|e| e.t_mono_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9], "oldest-first, newest retained");
    }

    #[test]
    fn ring_under_capacity_returns_all_in_order() {
        let ring = RingSink::new(8);
        for i in 0..3u64 {
            ring.record(&ev("tick", i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].span, 0);
        assert_eq!(events[2].span, 2);
    }

    #[test]
    fn ring_concurrent_writes_preserve_count() {
        let ring = std::sync::Arc::new(RingSink::new(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        ring.record(&ev("c", t * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8000);
        assert_eq!(ring.events().len(), 64);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let dir = std::env::temp_dir().join("miso-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&ev("a", 1));
            sink.record(&ev("b", 2));
        } // drop flushes
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for l in lines {
            parse_json(l).expect("every line is valid JSON");
        }
        std::fs::remove_file(&path).ok();
    }
}
