//! Machine-readable run reports.
//!
//! Every bench binary writes a versioned JSON report next to its text
//! output: the full metrics snapshot (counters, gauges, histogram
//! percentiles) plus benchmark-specific extras such as per-variant TTI
//! breakdowns. Reports are what you diff across PRs to see whether a
//! "perf improvement" actually moved `optimizer.cost_evals` or
//! `knapsack.dp_cells`.

use crate::metrics::MetricsSnapshot;
use miso_data::json::to_json;
use miso_data::Value;
use std::io;
use std::path::{Path, PathBuf};

/// Bumped whenever the report layout changes shape.
pub const REPORT_SCHEMA_VERSION: i64 = 1;

fn snapshot_to_value(snap: &MetricsSnapshot) -> Vec<(String, Value)> {
    let counters: Vec<(String, Value)> = snap
        .counters
        .iter()
        .map(|(&k, &v)| (k.to_string(), Value::Int(v as i64)))
        .collect();
    let gauges: Vec<(String, Value)> = snap
        .gauges
        .iter()
        .map(|(&k, &v)| (k.to_string(), Value::Float(v)))
        .collect();
    let histograms: Vec<(String, Value)> = snap
        .histograms
        .iter()
        .map(|(&k, s)| {
            (
                k.to_string(),
                Value::object(vec![
                    ("count".into(), Value::Int(s.count as i64)),
                    ("sum".into(), Value::Int(s.sum as i64)),
                    ("max".into(), Value::Int(s.max as i64)),
                    ("p50".into(), Value::Int(s.p50 as i64)),
                    ("p90".into(), Value::Int(s.p90 as i64)),
                    ("p95".into(), Value::Int(s.p95 as i64)),
                    ("p99".into(), Value::Int(s.p99 as i64)),
                ]),
            )
        })
        .collect();
    vec![
        ("counters".into(), Value::object(counters)),
        ("gauges".into(), Value::object(gauges)),
        ("histograms".into(), Value::object(histograms)),
    ]
}

/// Builds the report document for `bench` from the current global metrics
/// plus benchmark-specific `extra` data (pass `Value::Null` for none).
pub fn build_report(bench: &str, extra: Value) -> Value {
    let mut obj = vec![
        ("schema_version".into(), Value::Int(REPORT_SCHEMA_VERSION)),
        ("bench".into(), Value::str(bench)),
    ];
    obj.extend(snapshot_to_value(&crate::snapshot()));
    if extra != Value::Null {
        obj.push(("extra".into(), extra));
    }
    Value::object(obj)
}

/// Serializes `report` as pretty-enough JSON (compact, single line) into
/// `dir/<bench>.report.json`, creating `dir` on demand. Returns the path.
///
/// The write is atomic: the document lands in a same-directory temp file
/// first and is `rename`d into place, so a crash mid-write can truncate the
/// temp file but never leave a torn `.report.json` behind.
pub fn write_report(dir: impl AsRef<Path>, bench: &str, extra: Value) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{bench}.report.json"));
    let report = build_report(bench, extra);
    write_atomic(dir, &path, to_json(&report) + "\n")?;
    Ok(path)
}

/// Writes `contents` to `path` via a temp file in `dir` plus an atomic
/// rename. The temp name embeds the pid so concurrent writers (e.g. two
/// bench bins sharing `results/`) never clobber each other's staging file.
fn write_atomic(dir: &Path, path: &Path, contents: String) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("report");
    let tmp = dir.join(format!(".{file_name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count, init, observe, reset_metrics, ObsConfig};
    use miso_data::json::parse_json;

    #[test]
    fn report_includes_metrics_and_extra() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(16));
        reset_metrics();
        count("report.test_counter", 7);
        for v in [10u64, 20, 30] {
            observe("report.test_hist", v);
        }
        let extra = Value::object(vec![("variant".into(), Value::str("MS-MISO"))]);
        let report = build_report("unit", extra);
        let text = to_json(&report);
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get_field("schema_version"), Some(&Value::Int(1)));
        assert_eq!(v.get_field("bench"), Some(&Value::str("unit")));
        assert_eq!(
            v.get_field("counters")
                .unwrap()
                .get_field("report.test_counter"),
            Some(&Value::Int(7))
        );
        let hist = v
            .get_field("histograms")
            .unwrap()
            .get_field("report.test_hist")
            .unwrap();
        assert_eq!(hist.get_field("count"), Some(&Value::Int(3)));
        assert_eq!(
            v.get_field("extra").unwrap().get_field("variant"),
            Some(&Value::str("MS-MISO"))
        );
        init(ObsConfig::disabled());
    }

    #[test]
    fn write_report_creates_versioned_file() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(16));
        reset_metrics();
        count("report.file_counter", 1);
        let dir = std::env::temp_dir().join(format!("miso-obs-report-{}", std::process::id()));
        let path = write_report(&dir, "smoke", Value::Null).unwrap();
        assert!(path.ends_with("smoke.report.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let v = parse_json(text.trim()).unwrap();
        assert_eq!(v.get_field("schema_version"), Some(&Value::Int(1)));
        assert!(v.get_field("extra").is_none());
        std::fs::remove_dir_all(&dir).ok();
        init(ObsConfig::disabled());
    }

    #[test]
    fn write_report_is_atomic_and_leaves_no_temp_files() {
        let _g = crate::tests::GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(16));
        reset_metrics();
        let dir = std::env::temp_dir().join(format!("miso-obs-atomic-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Overwrite an existing report: the rename must replace it whole.
        let path = write_report(&dir, "atomic", Value::Null).unwrap();
        count("report.atomic_counter", 9);
        let path2 = write_report(&dir, "atomic", Value::Null).unwrap();
        assert_eq!(path, path2);
        let v = parse_json(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
        assert_eq!(
            v.get_field("counters")
                .unwrap()
                .get_field("report.atomic_counter"),
            Some(&Value::Int(9))
        );
        // No staging files survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
        init(ObsConfig::disabled());
    }
}
