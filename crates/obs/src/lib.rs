//! `miso-obs` — the observability backbone of the MISO reproduction.
//!
//! The paper's whole evaluation is a projection of internal events: per-query
//! HV/DW/transfer time, tuner reorganizations, optimizer what-if probes.
//! This crate makes those events first-class so any run can be profiled,
//! diffed across PRs, and debugged from a trace file — with **zero external
//! dependencies** (only `std` plus the workspace's own `miso-common` /
//! `miso-data` JSON writer).
//!
//! Three pillars:
//!
//! 1. **Span/event tracing** ([`span`], [`instant`], [`sink`]): RAII
//!    [`Span`] guards carrying monotonic wall timestamps plus optional
//!    *simulated* timestamps, emitted to a pluggable [`Sink`] — a
//!    lock-free-ish in-memory [`RingSink`], a [`JsonlSink`] writing one JSON
//!    object per line, or the default [`NoopSink`].
//! 2. **Metrics** ([`metrics`]): a global registry of counters, gauges, and
//!    log-linear histograms (p50/p90/p99) keyed by `&'static str` names.
//! 3. **Run reports** ([`report`]): a versioned JSON snapshot of every
//!    metric plus benchmark-specific extras, written under `results/`.
//!
//! # Enabling
//!
//! Observability is **off by default**; every disabled-path call costs one
//! relaxed atomic load. Turn it on with:
//!
//! * `MISO_TRACE=<path.jsonl>` — enable and stream events to a JSONL file;
//! * `MISO_OBS=1` — enable with the in-memory ring sink (metrics + last
//!   events only);
//! * programmatically via [`init`] with an [`ObsConfig`].
//!
//! ```
//! miso_obs::init(miso_obs::ObsConfig::ring(1024));
//! {
//!     let _q = miso_obs::span("query").field_str("label", "A1v1");
//!     miso_obs::count("optimizer.what_if_calls", 1);
//!     miso_obs::observe("optimizer.split.candidates", 17);
//! }
//! let snap = miso_obs::snapshot();
//! assert_eq!(snap.counters["optimizer.what_if_calls"], 1);
//! ```

pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use metrics::{HistogramSummary, MetricsSnapshot, Registry};
pub use report::{build_report, write_report, REPORT_SCHEMA_VERSION};
pub use sink::{Event, EventKind, FieldValue, JsonlSink, NoopSink, RingSink, Sink};
pub use span::Span;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Programmatic observability configuration (the code-level twin of the
/// `MISO_OBS` / `MISO_TRACE` environment toggles).
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Master switch; when false, every instrumentation call is a single
    /// atomic load.
    pub enabled: bool,
    /// Stream events to this JSONL file (implies `enabled`).
    pub trace_path: Option<PathBuf>,
    /// Keep the last N events in memory instead (used when no trace path is
    /// given).
    pub ring_capacity: Option<usize>,
}

impl ObsConfig {
    /// Disabled (the default state).
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Enabled with an in-memory ring sink of the given capacity.
    pub fn ring(capacity: usize) -> Self {
        ObsConfig {
            enabled: true,
            trace_path: None,
            ring_capacity: Some(capacity),
        }
    }

    /// Enabled with a JSONL trace file.
    pub fn trace(path: impl Into<PathBuf>) -> Self {
        ObsConfig {
            enabled: true,
            trace_path: Some(path.into()),
            ring_capacity: None,
        }
    }
}

pub(crate) struct ObsState {
    enabled: AtomicBool,
    sink: RwLock<Arc<dyn Sink>>,
    registry: Registry,
    epoch: Instant,
    next_span_id: AtomicU64,
}

fn state() -> &'static ObsState {
    static STATE: OnceLock<ObsState> = OnceLock::new();
    STATE.get_or_init(|| ObsState {
        enabled: AtomicBool::new(false),
        sink: RwLock::new(Arc::new(NoopSink)),
        registry: Registry::new(),
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(1),
    })
}

/// Whether observability is on. This is the disabled-path cost of every
/// instrumentation point: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Applies a configuration: installs the matching sink and flips the master
/// switch. Safe to call repeatedly (e.g. tests swapping sinks).
pub fn init(config: ObsConfig) {
    let s = state();
    if !config.enabled && config.trace_path.is_none() {
        s.enabled.store(false, Ordering::Relaxed);
        return;
    }
    let sink: Arc<dyn Sink> = match &config.trace_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(jsonl) => Arc::new(jsonl),
            Err(e) => {
                eprintln!("miso-obs: cannot open trace file {}: {e}", path.display());
                Arc::new(RingSink::new(config.ring_capacity.unwrap_or(4096)))
            }
        },
        None => Arc::new(RingSink::new(config.ring_capacity.unwrap_or(4096))),
    };
    set_sink(sink);
    s.enabled.store(true, Ordering::Relaxed);
}

/// Reads `MISO_TRACE` / `MISO_OBS` and initializes accordingly. Returns
/// whether observability ended up enabled. Every bench binary calls this
/// first thing in `main`.
pub fn init_from_env() -> bool {
    let trace = std::env::var_os("MISO_TRACE");
    let obs_on = std::env::var_os("MISO_OBS").is_some_and(|v| v != *"0");
    if trace.is_none() && !obs_on {
        return false;
    }
    init(ObsConfig {
        enabled: true,
        trace_path: trace.map(PathBuf::from),
        ring_capacity: Some(4096),
    });
    true
}

/// Replaces the active sink, returning the previous one. Events recorded
/// concurrently go to whichever sink the recording thread observed.
pub fn set_sink(sink: Arc<dyn Sink>) -> Arc<dyn Sink> {
    let s = state();
    let mut slot = s.sink.write().expect("obs sink lock");
    std::mem::replace(&mut *slot, sink)
}

/// The currently installed sink.
pub fn current_sink() -> Arc<dyn Sink> {
    state().sink.read().expect("obs sink lock").clone()
}

/// Flushes the active sink (JSONL sinks buffer writes).
pub fn flush() {
    current_sink().flush();
}

/// Nanoseconds of monotonic wall time since observability state creation.
pub(crate) fn mono_ns() -> u64 {
    state().epoch.elapsed().as_nanos() as u64
}

pub(crate) fn next_span_id() -> u64 {
    state().next_span_id.fetch_add(1, Ordering::Relaxed)
}

pub(crate) fn record_event(event: &Event) {
    current_sink().record(event);
}

// ---- Metrics facade -----------------------------------------------------

/// Increments counter `name` by `delta`. No-op (one atomic load) when
/// observability is disabled.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if enabled() {
        state()
            .registry
            .counter(name)
            .fetch_add(delta, Ordering::Relaxed);
    }
}

/// Sets gauge `name` to `value`.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if enabled() {
        state()
            .registry
            .gauge(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Records `value` into the log-linear histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        state().registry.histogram(name).record(value);
    }
}

/// A point-in-time snapshot of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    state().registry.snapshot()
}

/// Clears all registered metrics (counters to zero, histograms emptied).
/// Used between runs that share a process (tests, multi-variant benches).
pub fn reset_metrics() {
    state().registry.reset();
}

// ---- Span facade --------------------------------------------------------

/// Opens a [`Span`]; the guard emits a start event now and an end event with
/// duration and accumulated fields when dropped. Returns an inert guard when
/// observability is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::enter(name)
}

/// Emits a standalone (zero-duration) event with the given fields.
pub fn instant(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    let event = Event {
        kind: EventKind::Instant,
        name,
        span: span::current_span_id(),
        parent: 0,
        t_mono_ns: mono_ns(),
        dur_ns: 0,
        sim_us: None,
        fields,
    };
    record_event(&event);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests live in `tests/` integration style within the unit
    // test harness; they serialize on a mutex because the registry and the
    // enabled flag are process-wide.
    use std::sync::Mutex;
    pub(crate) static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_is_inert_and_cheap() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::disabled());
        reset_metrics();
        count("test.inert", 5);
        observe("test.inert_hist", 5);
        {
            let _s = span("test.inert_span");
        }
        let snap = snapshot();
        assert!(!snap.counters.contains_key("test.inert"));
        assert!(!snap.histograms.contains_key("test.inert_hist"));
    }

    #[test]
    fn env_style_config_round_trip() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(16));
        assert!(enabled());
        reset_metrics();
        count("test.cfg", 2);
        count("test.cfg", 3);
        assert_eq!(snapshot().counters["test.cfg"], 5);
        init(ObsConfig::disabled());
        assert!(!enabled());
    }

    #[test]
    fn sink_swap_under_concurrent_spans() {
        let _g = GLOBAL_TEST_LOCK.lock().unwrap();
        init(ObsConfig::ring(64));
        reset_metrics();
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4 {
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _s = span("test.swap").field_u64("thread", t);
                    n += 1;
                }
                n
            }));
        }
        // Swap sinks repeatedly while spans are being emitted.
        for i in 0..50 {
            let ring = Arc::new(RingSink::new(8 + (i % 8)));
            set_sink(ring);
            std::thread::yield_now();
        }
        let final_ring = Arc::new(RingSink::new(1024));
        set_sink(final_ring.clone());
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "spans were produced throughout");
        // The final sink observed events after the last swap, and every
        // recorded event is well-formed.
        let events = final_ring.events();
        assert!(!events.is_empty(), "events landed in the swapped-in sink");
        for e in &events {
            assert_eq!(e.name, "test.swap");
        }
        init(ObsConfig::disabled());
    }
}
