//! Background DW reporting workload profiles (paper §5.4).
//!
//! The paper keeps a commercial DW busy with parameterized TPC-DS queries —
//! template q3 (IO-intensive) and q83 (CPU-intensive) — run continuously to
//! pin spare capacity at 20% or 40%. Our DW is simulated, so the profiles
//! here parameterize `miso_dw::BackgroundSim` rather than issue real SQL;
//! the template metadata is kept for the benches' reporting.

use miso_dw::{BackgroundSim, Resource};

/// One §5.4 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundProfile {
    /// Saturated resource.
    pub resource: Resource,
    /// Spare percentage (20 or 40).
    pub spare_percent: u32,
    /// The TPC-DS template the paper used to create this load.
    pub template: &'static str,
    /// Concurrent instances the paper ran.
    pub instances: u32,
}

impl BackgroundProfile {
    /// Builds the matching simulator.
    pub fn simulator(&self) -> BackgroundSim {
        BackgroundSim::paper_config(self.resource, self.spare_percent)
    }

    /// Display label, e.g. `IO 40%`.
    pub fn label(&self) -> String {
        let r = match self.resource {
            Resource::Io => "IO",
            Resource::Cpu => "CPU",
        };
        format!("{r} {}%", self.spare_percent)
    }
}

/// The four Table 2 rows.
pub fn paper_profiles() -> [BackgroundProfile; 4] {
    [
        BackgroundProfile {
            resource: Resource::Io,
            spare_percent: 40,
            template: "q3",
            instances: 1,
        },
        BackgroundProfile {
            resource: Resource::Io,
            spare_percent: 20,
            template: "q3",
            instances: 3,
        },
        BackgroundProfile {
            resource: Resource::Cpu,
            spare_percent: 40,
            template: "q83",
            instances: 2,
        },
        BackgroundProfile {
            resource: Resource::Cpu,
            spare_percent: 20,
            template: "q83",
            instances: 3,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_profiles_matching_table_2() {
        let profiles = paper_profiles();
        assert_eq!(profiles.len(), 4);
        assert_eq!(profiles[0].label(), "IO 40%");
        assert_eq!(profiles[3].label(), "CPU 20%");
        for p in profiles {
            let sim = p.simulator();
            assert!((sim.spare - p.spare_percent as f64 / 100.0).abs() < 1e-9);
        }
    }
}
