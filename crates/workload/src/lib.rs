//! The evolutionary analytics workload.
//!
//! The paper evaluates on "32 complex analytical queries given in \[14\] ...
//! for restaurant marketing scenarios. The queries model eight data
//! analysts, each posing and iteratively refining a query multiple times
//! during their data exploration. Each analyst (Ai) evolves a query through
//! four versions Aiv1..Aiv4; an evolved version represents a mutation of the
//! previous, thus there is some overlap between queries."
//!
//! \[14\]'s exact query text is not public, so [`evolutionary_queries`]
//! reconstructs the workload's *structure*: eight marketing analyses over
//! the synthetic Twitter/Foursquare/Landmarks logs, each evolving through
//! four versions whose mutations follow \[14\]'s taxonomy — adding aggregates,
//! adding HAVING/ORDER/LIMIT refinement, adding a join, tightening
//! predicates — so that consecutive versions share subexpressions exactly
//! where opportunistic views can capture them. Two analyses use a UDF
//! (`buzz_score`), pinning part of their plans to HV.
//!
//! [`standard_udfs`]/[`workload_catalog`] supply the matching UDF registry
//! and language catalog; [`compile_workload`] lowers all 32 queries.

pub mod background;

use miso_common::Result;
use miso_data::{DataType, Field, Row, Schema, Value};
use miso_exec::{Udf, UdfRegistry};
use miso_lang::{compile, Catalog};
use miso_plan::LogicalPlan;
use std::sync::Arc;

/// One workload entry: paper-style label (`A1v2`) and its HiveQL text.
#[derive(Debug, Clone)]
pub struct WorkloadQuerySpec {
    /// Label, `A<analyst>v<version>`.
    pub label: String,
    /// HiveQL text.
    pub sql: String,
}

/// The language catalog for the workload: the standard logs plus the
/// workload's UDF signatures.
pub fn workload_catalog() -> Catalog {
    let mut c = Catalog::standard();
    c.add_udf("buzz_score", buzz_schema());
    c
}

fn buzz_schema() -> Schema {
    Schema::new(vec![
        Field::new("user_id", DataType::Int),
        Field::new("buzz", DataType::Float),
        Field::new("city", DataType::Str),
    ])
}

/// The workload's UDFs as executable registrations.
///
/// `buzz_score` models the paper's opaque user code: it reads raw tweet
/// records and emits a per-tweet engagement score — something expressible
/// only as code, not HiveQL (log-scaled retweets damped by follower count,
/// dropped for non-English or malformed records).
pub fn standard_udfs() -> UdfRegistry {
    let mut reg = UdfRegistry::new();
    reg.register(Udf::new(
        "buzz_score",
        buzz_schema(),
        Arc::new(|row: &Row| {
            let rec = row.get(0);
            let lang = rec.get_field("lang").and_then(Value::as_str);
            if lang != Some("en") {
                return Ok(vec![]);
            }
            let (Some(uid), Some(rts), Some(fol), Some(city)) = (
                rec.get_field("user_id").and_then(Value::as_i64),
                rec.get_field("retweets").and_then(Value::as_f64),
                rec.get_field("followers").and_then(Value::as_f64),
                rec.get_field("city").and_then(Value::as_str),
            ) else {
                return Ok(vec![]);
            };
            let buzz = (1.0 + rts).ln() / (1.0 + fol).ln().max(1.0) * 10.0;
            Ok(vec![Row::new(vec![
                Value::Int(uid),
                Value::Float(buzz),
                Value::Str(city.to_string()),
            ])])
        }),
    ));
    reg
}

/// The 32 queries (8 analysts × 4 versions).
///
/// Stream order models \[14\]'s *concurrent* analysts: sessions overlap, so
/// successive versions of one analyst's query are separated by other
/// analysts' queries. We interleave in cohorts of three (A1,A2,A3 alternate
/// versions, then A4,A5,A6, then A7,A8) — a version's successor arrives
/// about one reorganization phase later, which is exactly the dynamics the
/// online tuner is designed for.
pub fn evolutionary_queries() -> Vec<WorkloadQuerySpec> {
    let by_analyst = authored_queries();
    let mut out = Vec::with_capacity(32);
    for cohort in [[1usize, 2, 3].as_slice(), &[4, 5, 6], &[7, 8]] {
        for version in 0..4 {
            for &analyst in cohort {
                out.push(by_analyst[(analyst - 1) * 4 + version].clone());
            }
        }
    }
    out
}

/// The queries in authoring order (A1v1..A1v4, A2v1..A2v4, ...).
pub fn authored_queries() -> Vec<WorkloadQuerySpec> {
    let mut out = Vec::with_capacity(32);
    let mut push = |analyst: usize, version: usize, sql: &str| {
        out.push(WorkloadQuerySpec {
            label: format!("A{analyst}v{version}"),
            sql: sql.to_string(),
        });
    };

    // ---- A1: pizza buzz by city (Twitter). v2 refines the aggregate view;
    // v3 changes the aggregate set but reuses the filtered extraction;
    // v4 refines v3's aggregate view.
    push(
        1,
        1,
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS avg_sent \
         FROM twitter t \
         WHERE array_contains(t.hashtags, 'pizza') AND t.followers > 1000 \
         GROUP BY t.city",
    );
    push(
        1,
        2,
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS avg_sent \
         FROM twitter t \
         WHERE array_contains(t.hashtags, 'pizza') AND t.followers > 1000 \
         GROUP BY t.city HAVING COUNT(*) > 5 ORDER BY n DESC",
    );
    push(
        1,
        3,
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS avg_sent, \
                MAX(t.followers) AS top_followers \
         FROM twitter t \
         WHERE array_contains(t.hashtags, 'pizza') AND t.followers > 1000 \
         GROUP BY t.city",
    );
    push(
        1,
        4,
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS avg_sent, \
                MAX(t.followers) AS top_followers \
         FROM twitter t \
         WHERE array_contains(t.hashtags, 'pizza') AND t.followers > 1000 \
         GROUP BY t.city ORDER BY top_followers DESC LIMIT 10",
    );

    // ---- A2: restaurant check-ins (Foursquare ⋈ Landmarks). v2 refines,
    // v3 swaps the aggregate set over the same join, v4 refines v3.
    push(
        2,
        1,
        "SELECT l.city AS city, COUNT(*) AS checkins, AVG(l.rating) AS avg_rating \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 5 AND l.category = 'restaurant' \
         GROUP BY l.city",
    );
    push(
        2,
        2,
        "SELECT l.city AS city, COUNT(*) AS checkins, AVG(l.rating) AS avg_rating \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 5 AND l.category = 'restaurant' \
         GROUP BY l.city HAVING COUNT(*) > 10 ORDER BY checkins DESC",
    );
    push(
        2,
        3,
        "SELECT l.city AS city, COUNT(*) AS checkins, MAX(l.rating) AS best \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 5 AND l.category = 'restaurant' \
         GROUP BY l.city",
    );
    push(
        2,
        4,
        "SELECT l.city AS city, COUNT(*) AS checkins, MAX(l.rating) AS best \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 5 AND l.category = 'restaurant' \
         GROUP BY l.city HAVING MAX(l.rating) > 4.0 ORDER BY best DESC LIMIT 5",
    );

    // ---- A3: engagement scoring via the buzz_score UDF (HV-pinned).
    push(
        3,
        1,
        "SELECT b.user_id AS uid, MAX(b.buzz) AS peak \
         FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.5 GROUP BY b.user_id",
    );
    push(
        3,
        2,
        "SELECT b.user_id AS uid, MAX(b.buzz) AS peak \
         FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.5 GROUP BY b.user_id \
         HAVING MAX(b.buzz) > 2.0 ORDER BY peak DESC",
    );
    push(
        3,
        3,
        "SELECT b.user_id AS uid, MAX(b.buzz) AS peak, COUNT(*) AS checkins \
         FROM APPLY(buzz_score, twitter) b \
         JOIN foursquare f ON b.user_id = f.user_id \
         WHERE b.buzz > 0.5 AND f.likes > 2 \
         GROUP BY b.user_id",
    );
    push(
        3,
        4,
        "SELECT b.user_id AS uid, MAX(b.buzz) AS peak, COUNT(*) AS checkins \
         FROM APPLY(buzz_score, twitter) b \
         JOIN foursquare f ON b.user_id = f.user_id \
         WHERE b.buzz > 0.5 AND f.likes > 2 \
         GROUP BY b.user_id ORDER BY peak DESC LIMIT 20",
    );

    // ---- A4: influencer activity (Twitter ⋈ Foursquare). v3 tightens the
    // Foursquare branch (drift), v4 refines v3.
    push(
        4,
        1,
        "SELECT t.city AS city, COUNT(*) AS activity \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
         WHERE t.followers > 30000 AND f.likes > 10 \
         GROUP BY t.city",
    );
    push(
        4,
        2,
        "SELECT t.city AS city, COUNT(*) AS activity, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
         WHERE t.followers > 30000 AND f.likes > 10 \
         GROUP BY t.city",
    );
    push(
        4,
        3,
        "SELECT t.city AS city, COUNT(*) AS activity, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND f.with_friends = TRUE \
         GROUP BY t.city",
    );
    push(
        4,
        4,
        "SELECT t.city AS city, COUNT(*) AS activity, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND f.with_friends = TRUE \
         GROUP BY t.city HAVING COUNT(DISTINCT t.user_id) > 3 ORDER BY activity DESC",
    );

    // ---- A5: coffee-talk sentiment by language (Twitter text search).
    push(
        5,
        1,
        "SELECT t.lang AS lang, COUNT(*) AS n, AVG(t.sentiment) AS mood, \
                SUM(t.retweets) AS reach \
         FROM twitter t WHERE contains(t.text, 'coffee') \
         GROUP BY t.lang",
    );
    push(
        5,
        2,
        "SELECT t.lang AS lang, COUNT(*) AS n, AVG(t.sentiment) AS mood, \
                SUM(t.retweets) AS reach \
         FROM twitter t WHERE contains(t.text, 'coffee') \
         GROUP BY t.lang HAVING COUNT(*) > 5 ORDER BY mood DESC",
    );
    push(
        5,
        3,
        "SELECT t.lang AS lang, COUNT(*) AS n, AVG(t.sentiment) AS mood, \
                SUM(t.retweets) AS reach \
         FROM twitter t WHERE contains(t.text, 'coffee') AND t.retweets > 10 \
         GROUP BY t.lang",
    );
    push(
        5,
        4,
        "SELECT t.lang AS lang, COUNT(*) AS n, AVG(t.sentiment) AS mood, \
                SUM(t.retweets) AS reach \
         FROM twitter t WHERE contains(t.text, 'coffee') AND t.retweets > 10 \
         GROUP BY t.lang ORDER BY reach DESC LIMIT 3",
    );

    // ---- A6: when do friends check in (Foursquare temporal).
    push(
        6,
        1,
        "SELECT day(f.ts) AS d, COUNT(*) AS n \
         FROM foursquare f WHERE f.with_friends = TRUE \
         GROUP BY day(f.ts)",
    );
    push(
        6,
        2,
        "SELECT day(f.ts) AS d, COUNT(*) AS n \
         FROM foursquare f WHERE f.with_friends = TRUE \
         GROUP BY day(f.ts) HAVING COUNT(*) > 3 ORDER BY n DESC",
    );
    push(
        6,
        3,
        "SELECT hour(f.ts) AS h, COUNT(*) AS n \
         FROM foursquare f WHERE f.with_friends = TRUE \
         GROUP BY hour(f.ts)",
    );
    push(
        6,
        4,
        "SELECT hour(f.ts) AS h, COUNT(*) AS n \
         FROM foursquare f WHERE f.with_friends = TRUE \
         GROUP BY hour(f.ts) HAVING COUNT(*) > 10 ORDER BY n DESC",
    );

    // ---- A7: price-tier performance (Foursquare ⋈ Landmarks).
    push(
        7,
        1,
        "SELECT l.price_tier AS tier, COUNT(*) AS visits, AVG(f.likes) AS avg_likes, \
                MIN(l.category) AS sample_cat \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE l.rating > 3.0 AND l.category <> 'mall' \
         GROUP BY l.price_tier",
    );
    push(
        7,
        2,
        "SELECT l.price_tier AS tier, COUNT(*) AS visits, AVG(f.likes) AS avg_likes, \
                MIN(l.category) AS sample_cat \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE l.rating > 3.0 AND l.category <> 'mall' \
         GROUP BY l.price_tier HAVING COUNT(*) > 10",
    );
    push(
        7,
        3,
        "SELECT l.category AS cat, COUNT(*) AS visits, AVG(f.likes) AS avg_likes, \
                MIN(l.price_tier) AS cheapest \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE l.rating > 3.0 AND l.category <> 'mall' \
         GROUP BY l.category",
    );
    push(
        7,
        4,
        "SELECT l.category AS cat, COUNT(*) AS visits, AVG(f.likes) AS avg_likes, \
                MIN(l.price_tier) AS cheapest \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE l.rating > 3.0 AND l.category <> 'mall' \
         GROUP BY l.category ORDER BY visits DESC LIMIT 5",
    );

    // ---- A8: where do influential users go (three-way join).
    push(
        8,
        1,
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
                        JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND l.rating > 4.0 \
         GROUP BY l.category",
    );
    push(
        8,
        2,
        "SELECT l.category AS cat, COUNT(*) AS n, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
                        JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND l.rating > 4.0 \
         GROUP BY l.category",
    );
    push(
        8,
        3,
        "SELECT l.category AS cat, COUNT(*) AS n, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
                        JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND t.sentiment > 0.0 AND l.rating > 4.0 \
         GROUP BY l.category",
    );
    push(
        8,
        4,
        "SELECT l.category AS cat, COUNT(*) AS n, COUNT(DISTINCT t.user_id) AS users \
         FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
                        JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE t.followers > 30000 AND f.likes > 10 AND t.sentiment > 0.0 AND l.rating > 4.0 \
         GROUP BY l.category HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 10",
    );

    out
}

/// Compiles the whole workload to `(label, plan)` pairs.
pub fn compile_workload(catalog: &Catalog) -> Result<Vec<(String, LogicalPlan)>> {
    evolutionary_queries()
        .into_iter()
        .map(|q| Ok((q.label, compile(&q.sql, catalog)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_plan::fingerprint::fingerprint_all;
    use std::collections::HashSet;

    #[test]
    fn thirty_two_queries_eight_analysts() {
        let qs = evolutionary_queries();
        assert_eq!(qs.len(), 32);
        for analyst in 1..=8 {
            for version in 1..=4 {
                assert!(qs
                    .iter()
                    .any(|q| q.label == format!("A{analyst}v{version}")));
            }
        }
    }

    #[test]
    fn all_queries_compile() {
        let catalog = workload_catalog();
        let plans = compile_workload(&catalog).unwrap();
        assert_eq!(plans.len(), 32);
        for (label, plan) in &plans {
            assert!(plan.len() >= 4, "{label} is too trivial: {}", plan.render());
        }
    }

    #[test]
    fn udf_queries_are_hv_pinned() {
        let catalog = workload_catalog();
        let plans = compile_workload(&catalog).unwrap();
        let udf_count = plans.iter().filter(|(_, p)| p.has_udf()).count();
        assert_eq!(udf_count, 4, "all four A3 versions use the UDF");
    }

    #[test]
    fn consecutive_versions_share_subexpressions() {
        // The workload's whole premise: vN+1 shares a materializable subtree
        // with vN for most analysts.
        let catalog = workload_catalog();
        let plans: Vec<(String, LogicalPlan)> = authored_queries()
            .into_iter()
            .map(|q| (q.label, compile(&q.sql, &catalog).unwrap()))
            .collect();
        let mut sharing_pairs = 0;
        let mut total_pairs = 0;
        for analyst in 0..8 {
            for version in 0..3 {
                let (_, a) = &plans[analyst * 4 + version];
                let (_, b) = &plans[analyst * 4 + version + 1];
                total_pairs += 1;
                let fps_a: HashSet<u64> = fingerprint_all(a).values().map(|f| f.0).collect();
                let fps_b: HashSet<u64> = fingerprint_all(b).values().map(|f| f.0).collect();
                // Shared non-leaf subexpression (leaves trivially collide).
                let shared_nontrivial = fps_a.intersection(&fps_b).count() > 2;
                if shared_nontrivial {
                    sharing_pairs += 1;
                }
            }
        }
        assert!(
            sharing_pairs >= total_pairs * 2 / 3,
            "only {sharing_pairs}/{total_pairs} consecutive pairs overlap"
        );
    }

    #[test]
    fn refinement_versions_reuse_the_aggregate_stage() {
        // A1v2 (v1 + HAVING/ORDER) must be able to consume A1v1's
        // materialized aggregate stage output as a view: v1's aggregate node
        // is an HV stage boundary, so its output is exactly what HV leaves
        // behind.
        let catalog = workload_catalog();
        let plans: Vec<(String, LogicalPlan)> = authored_queries()
            .into_iter()
            .map(|q| (q.label, compile(&q.sql, &catalog).unwrap()))
            .collect();
        let (_, v1) = &plans[0];
        let (_, v2) = &plans[1];
        let agg = v1
            .nodes()
            .iter()
            .find(|n| matches!(n.op, miso_plan::Operator::Aggregate { .. }))
            .unwrap()
            .id;
        let agg_fp = miso_plan::fingerprint::fingerprint_subtree(v1, agg);
        let available: HashSet<String> = [agg_fp.view_name()].into_iter().collect();
        let rewrite = miso_views::rewrite_with_views(v2, &available);
        assert_eq!(
            rewrite.used.len(),
            1,
            "A1v2 should scan A1v1's aggregate view:\n{}",
            v2.render()
        );
        // The rewritten v2 has no base-log scans left: with the view in DW
        // the whole query can bypass HV.
        assert!(rewrite.plan.base_logs().is_empty());
    }

    #[test]
    fn udf_executes_over_corpus() {
        use miso_data::logs::{Corpus, LogsConfig};
        use miso_exec::engine::{execute, MemSource};
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let mut src = MemSource::new();
        src.add_log("twitter", corpus.twitter.lines.clone());
        let catalog = workload_catalog();
        let plan = compile(
            "SELECT b.city AS city, AVG(b.buzz) AS avg_buzz \
             FROM APPLY(buzz_score, twitter) b GROUP BY b.city",
            &catalog,
        )
        .unwrap();
        let exec = execute(&plan, &src, &standard_udfs()).unwrap();
        assert!(!exec.root_rows().unwrap().is_empty());
    }
}
