//! The multistore query optimizer.
//!
//! Given a freshly lowered query plan and the current (or hypothetical)
//! placement of views across HV and DW, choose:
//!
//! 1. **a rewrite** — which materialized views to consume (\[15\]'s rewriting
//!    algorithm, via `miso_views::rewrite`), and
//! 2. **a split point** — the cut at which the working set migrates from HV
//!    to DW (paper §3.1: "the multistore query optimizer chooses the split
//!    points based on the logical execution plan and then delegates the
//!    resulting sub-plans to the store-specific optimizers").
//!
//! Costing uses a common simulated-time unit across the three components —
//! HV execution, transfer (dump + network + load), DW execution — which is
//! the unit-normalization the paper performs empirically ("some unit
//! normalization is required for each specific store"). Estimates come from
//! `miso_plan::estimate`; true sizes of base logs and existing views are
//! injected through the stats source.
//!
//! The optimizer also exposes the **what-if mode** the MISO tuner probes:
//! [`what_if_cost`] costs a query under a hypothetical design without
//! executing anything.

pub mod cost;
pub mod explain;
pub mod optimize;

pub use cost::{CostBreakdown, TransferModel};
pub use explain::explain;
pub use optimize::{optimize, what_if_cost, Design, PlannedQuery};
