//! EXPLAIN for multistore plans.
//!
//! Renders a [`PlannedQuery`] as an annotated tree: which store executes
//! each operator, where the plan splits, what crosses the wire, and the
//! estimated cost breakdown — the multistore analogue of `EXPLAIN`.

use crate::optimize::PlannedQuery;
use miso_common::ids::NodeId;
use std::fmt::Write;

/// Renders `planned` as a human-readable explanation.
pub fn explain(planned: &PlannedQuery) -> String {
    let plan = &planned.plan;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "multistore plan: est. total {} (HV {}, transfer {}, DW {})",
        planned.est.total(),
        planned.est.hv,
        planned.est.transfer,
        planned.est.dw
    );
    if planned.used_views.is_empty() {
        let _ = writeln!(out, "views: none");
    } else {
        let _ = writeln!(out, "views: {}", planned.used_views.join(", "));
    }
    let cuts = planned.split.cut_nodes(plan);
    if planned.split.is_hv_only(plan) {
        let _ = writeln!(out, "placement: entirely in HV");
    } else if planned.split.is_dw_only() {
        let _ = writeln!(out, "placement: entirely in DW");
    } else {
        let _ = writeln!(
            out,
            "placement: split — {} operator(s) in HV, {} in DW; {} working set(s) cross",
            planned.split.hv_nodes().len(),
            plan.len() - planned.split.hv_nodes().len(),
            cuts.len()
        );
    }
    render_node(planned, plan.root(), 0, &cuts, &mut out);
    out
}

fn render_node(
    planned: &PlannedQuery,
    id: NodeId,
    depth: usize,
    cuts: &[NodeId],
    out: &mut String,
) {
    let node = planned.plan.node(id);
    let store = if planned.split.in_hv(id) { "HV" } else { "DW" };
    let cut_mark = if cuts.contains(&id) {
        "  <== working set ships to DW"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  [{store}] {}{}{}",
        "  ".repeat(depth),
        node.op.label(),
        cut_mark
    );
    for &input in &node.inputs {
        render_node(planned, input, depth + 1, cuts, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TransferModel;
    use crate::optimize::{optimize, Design, OptimizerEnv};
    use miso_dw::DwCostModel;
    use miso_hv::HvCostModel;
    use miso_lang::{compile, Catalog};
    use miso_plan::estimate::MapStats;

    fn planned(sql: &str) -> PlannedQuery {
        let plan = compile(sql, &Catalog::standard()).unwrap();
        let mut stats = MapStats::new();
        stats.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
        stats.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let env = OptimizerEnv {
            stats: &stats,
            hv: &hv,
            dw: &dw,
            transfer: &tm,
            catalog: None,
        };
        optimize(&plan, &Design::new(), &env).unwrap()
    }

    #[test]
    fn explain_renders_stores_and_costs() {
        let p = planned(
            "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 500 GROUP BY t.city",
        );
        let text = explain(&p);
        assert!(text.contains("multistore plan: est. total"));
        assert!(text.contains("[HV]"), "{text}");
        assert!(text.contains("ScanLog(twitter)"));
        assert!(text.contains("views: none"));
    }

    #[test]
    fn explain_marks_cut_working_sets_on_split_plans() {
        let p = planned(
            "SELECT t.city AS c, COUNT(*) AS n, COUNT(DISTINCT t.user_id) AS u \
             FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
             WHERE t.followers > 500 AND f.likes > 3 \
             GROUP BY t.city ORDER BY n DESC LIMIT 5",
        );
        let text = explain(&p);
        if !p.split.is_hv_only(&p.plan) {
            assert!(text.contains("working set"), "{text}");
            assert!(text.contains("[DW]"), "{text}");
        }
        // Every plan node appears exactly once.
        let lines = text
            .lines()
            .filter(|l| l.contains("[HV]") || l.contains("[DW]"));
        assert_eq!(lines.count(), p.plan.len());
    }
}
