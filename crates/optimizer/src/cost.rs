//! Split costing in normalized units.
//!
//! [`estimate_split_cost`] mirrors exactly what the execution layer will
//! charge — HV staged execution, dump/transfer/load of every cut working
//! set, DW execution — but over size *estimates* instead of actual row
//! counts, so the optimizer can compare splits (and the tuner can probe
//! hypothetical designs) without running anything.

use miso_common::ids::NodeId;
use miso_common::{ByteSize, SimDuration};
use miso_dw::DwCostModel;
use miso_hv::{compile_stages, HvCostModel};
use miso_plan::estimate::SizeEstimate;
use miso_plan::{LogicalPlan, Operator, Split};
use std::collections::{HashMap, HashSet};

/// Network transfer between the two clusters (adjacent racks, 1 GbE in the
/// paper's setup), in effective seconds per actual byte at our data scale.
#[derive(Debug, Clone)]
pub struct TransferModel {
    /// Seconds per byte moved across the wire.
    pub network_secs_per_byte: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::paper_default()
    }
}

impl TransferModel {
    /// Calibrated alongside the store models (see `DESIGN.md` §5).
    pub fn paper_default() -> Self {
        TransferModel {
            network_secs_per_byte: 0.6e-4,
        }
    }

    /// Wire time for `bytes`.
    pub fn transfer_cost(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 * self.network_secs_per_byte)
    }
}

/// The three cost components of a multistore plan (paper Figure 3's stacked
/// bars, with DUMP+TRANSFER+LOAD folded into `transfer`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Time executing in HV.
    pub hv: SimDuration,
    /// Time dumping, moving, and loading working sets.
    pub transfer: SimDuration,
    /// Time executing in DW.
    pub dw: SimDuration,
}

impl CostBreakdown {
    /// Total normalized cost.
    pub fn total(&self) -> SimDuration {
        self.hv + self.transfer + self.dw
    }
}

/// Estimates the cost of executing `plan` under `split`.
///
/// `estimates` must cover every node (from `miso_plan::estimate`).
pub fn estimate_split_cost(
    plan: &LogicalPlan,
    split: &Split,
    estimates: &HashMap<NodeId, SizeEstimate>,
    hv: &HvCostModel,
    dw: &DwCostModel,
    transfer: &TransferModel,
) -> CostBreakdown {
    let mut breakdown = CostBreakdown::default();

    // --- HV side: staged execution over the HV node set.
    let hv_set: HashSet<NodeId> = split.hv_nodes().iter().copied().collect();
    if !hv_set.is_empty() {
        let stages = compile_stages(plan, Some(&hv_set), &HashSet::new());
        for stage in &stages {
            let mut bytes_in = 0.0f64;
            let mut rows = 0.0f64;
            for &id in &stage.nodes {
                let node = plan.node(id);
                if matches!(
                    node.op,
                    Operator::ScanLog { .. } | Operator::ScanView { .. }
                ) {
                    bytes_in += estimates[&id].bytes;
                }
                rows += estimates[&id].rows;
            }
            for &up in &stage.upstream {
                bytes_in += estimates[&up].bytes;
            }
            let bytes_out = estimates[&stage.output].bytes;
            breakdown.hv += hv.stage_cost(
                ByteSize::from_bytes(bytes_in as u64),
                ByteSize::from_bytes(bytes_out as u64),
                rows as u64,
            );
        }
    }

    // --- Transfer: every cut node's output crosses the wire.
    for cut in split.cut_nodes(plan) {
        let bytes = ByteSize::from_bytes(estimates[&cut].bytes as u64);
        breakdown.transfer +=
            hv.dump_cost(bytes) + transfer.transfer_cost(bytes) + dw.load_cost(bytes);
    }

    // --- DW side: remaining nodes.
    let mut dw_bytes_in = 0.0f64;
    let mut dw_rows = 0.0f64;
    let mut any_dw = false;
    for node in plan.nodes() {
        if split.in_hv(node.id) {
            continue;
        }
        any_dw = true;
        match &node.op {
            Operator::ScanView { .. } => {
                dw_bytes_in += estimates[&node.id].bytes;
            }
            _ => {
                // Working sets read from temp space.
                for input in &node.inputs {
                    if split.in_hv(*input) {
                        dw_bytes_in += estimates[input].bytes;
                    }
                }
            }
        }
        dw_rows += estimates[&node.id].rows;
    }
    if any_dw {
        breakdown.dw += dw.exec_cost(ByteSize::from_bytes(dw_bytes_in as u64), dw_rows as u64);
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::DataType;
    use miso_plan::estimate::{estimate_plan, MapStats};
    use miso_plan::{AggExpr, AggFunc, Expr, Operator, PlanBuilder};

    fn linear() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let proj = b
            .add(
                Operator::Project {
                    exprs: vec![(
                        "uid".into(),
                        Expr::col(0).get("user_id").cast(DataType::Int),
                    )],
                },
                vec![scan],
            )
            .unwrap();
        let filt = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![proj],
            )
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![filt],
            )
            .unwrap();
        b.finish(agg).unwrap()
    }

    fn setup() -> (LogicalPlan, HashMap<NodeId, SizeEstimate>) {
        let plan = linear();
        let mut stats = MapStats::new();
        stats.set_log("twitter", 100_000.0, 100_000.0 * 300.0);
        let est = estimate_plan(&plan, &stats);
        (plan, est)
    }

    #[test]
    fn hv_only_has_no_transfer_or_dw() {
        let (plan, est) = setup();
        let split = Split::all_hv(&plan);
        let c = estimate_split_cost(
            &plan,
            &split,
            &est,
            &HvCostModel::paper_default(),
            &DwCostModel::paper_default(),
            &TransferModel::paper_default(),
        );
        assert!(c.hv > SimDuration::ZERO);
        assert_eq!(c.transfer, SimDuration::ZERO);
        assert_eq!(c.dw, SimDuration::ZERO);
    }

    #[test]
    fn early_split_transfers_more_than_late_split() {
        let (plan, est) = setup();
        let hvm = HvCostModel::paper_default();
        let dwm = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let early = Split::new([NodeId(0)].into_iter().collect());
        let late = Split::new([NodeId(0), NodeId(1), NodeId(2)].into_iter().collect());
        let c_early = estimate_split_cost(&plan, &early, &est, &hvm, &dwm, &tm);
        let c_late = estimate_split_cost(&plan, &late, &est, &hvm, &dwm, &tm);
        assert!(
            c_early.transfer > c_late.transfer,
            "working set shrinks late"
        );
        assert!(
            c_early.total() > c_late.total(),
            "early ETL-style split loses"
        );
    }

    #[test]
    fn late_split_beats_hv_only_modestly() {
        // The Figure 3 shape, on a realistically-shaped join query with a
        // multi-stage tail: the best (late) split is modestly faster than
        // HV-only; the earliest split (ship raw data) is far worse.
        let mut b = PlanBuilder::new();
        let s1 = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let p1 = b
            .add(
                Operator::Project {
                    exprs: vec![
                        (
                            "uid".into(),
                            Expr::col(0).get("user_id").cast(DataType::Int),
                        ),
                        ("text".into(), Expr::col(0).get("text").cast(DataType::Str)),
                    ],
                },
                vec![s1],
            )
            .unwrap();
        let s2 = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let p2 = b
            .add(
                Operator::Project {
                    exprs: vec![
                        (
                            "uid".into(),
                            Expr::col(0).get("user_id").cast(DataType::Int),
                        ),
                        ("city".into(), Expr::col(0).get("city").cast(DataType::Str)),
                    ],
                },
                vec![s2],
            )
            .unwrap();
        let j = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![p1, p2])
            .unwrap();
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![3],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![j],
            )
            .unwrap();
        let sort = b
            .add(
                Operator::Sort {
                    keys: vec![(1, true)],
                },
                vec![agg],
            )
            .unwrap();
        let plan = b.finish(sort).unwrap();

        let mut stats = MapStats::new();
        stats.set_log("twitter", 100_000.0, 100_000.0 * 300.0);
        stats.set_log("foursquare", 50_000.0, 50_000.0 * 150.0);
        let est = estimate_plan(&plan, &stats);
        let hvm = HvCostModel::paper_default();
        let dwm = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();

        let hv_only = estimate_split_cost(&plan, &Split::all_hv(&plan), &est, &hvm, &dwm, &tm);
        // Late split: after the join, once the working set has shrunk.
        let late = Split::new(
            [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
                .into_iter()
                .collect(),
        );
        let c_late = estimate_split_cost(&plan, &late, &est, &hvm, &dwm, &tm);
        // Earliest split: ship the raw scans.
        let early = Split::new([NodeId(0), NodeId(2)].into_iter().collect());
        let c_early = estimate_split_cost(&plan, &early, &est, &hvm, &dwm, &tm);

        assert!(c_late.total() < hv_only.total(), "late split wins");
        let improvement = 1.0 - c_late.total().as_secs_f64() / hv_only.total().as_secs_f64();
        assert!(
            (0.0..0.5).contains(&improvement),
            "single-query multistore gain must be modest, got {improvement}"
        );
        assert!(
            c_early.total() > hv_only.total(),
            "ETL-style early split is worse than staying in HV"
        );
    }

    #[test]
    fn transfer_model_is_linear() {
        let tm = TransferModel::paper_default();
        let one = tm.transfer_cost(ByteSize::from_mib(1));
        let two = tm.transfer_cost(ByteSize::from_mib(2));
        assert_eq!(two.as_micros(), one.as_micros() * 2);
    }
}
