//! Plan selection: rewrite variants × split enumeration → cheapest feasible.

use crate::cost::{estimate_split_cost, CostBreakdown, TransferModel};
use miso_common::{MisoError, Result, SimDuration};
use miso_dw::DwCostModel;
use miso_hv::HvCostModel;
use miso_plan::estimate::{estimate_plan, StatsSource};
use miso_plan::split::enumerate_splits;
use miso_plan::{LogicalPlan, Operator, Split};
use miso_views::{rewrite_with_catalog, rewrite_with_views, ViewCatalog};
use std::collections::HashSet;

/// A (possibly hypothetical) multistore physical design: which views reside
/// in which store. `M = ⟨V_h, V_d⟩` in the paper's notation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Design {
    /// Views resident in HV.
    pub hv_views: HashSet<String>,
    /// Views resident in DW.
    pub dw_views: HashSet<String>,
}

impl Design {
    /// An empty design.
    pub fn new() -> Self {
        Self::default()
    }

    /// All views available anywhere.
    pub fn all_views(&self) -> HashSet<String> {
        self.hv_views.union(&self.dw_views).cloned().collect()
    }
}

/// The optimizer's chosen multistore execution plan for one query.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The (possibly view-rewritten) plan.
    pub plan: LogicalPlan,
    /// The chosen split.
    pub split: Split,
    /// Views the rewrite consumed.
    pub used_views: Vec<String>,
    /// Estimated cost breakdown.
    pub est: CostBreakdown,
}

/// Shared optimizer inputs.
pub struct OptimizerEnv<'a> {
    /// True log/view size source.
    pub stats: &'a dyn StatsSource,
    /// HV cost model.
    pub hv: &'a HvCostModel,
    /// DW cost model.
    pub dw: &'a DwCostModel,
    /// Transfer model.
    pub transfer: &'a TransferModel,
    /// View structure for containment rewriting; `None` = exact-match only.
    pub catalog: Option<&'a ViewCatalog>,
}

/// Optimizes `raw_plan` against `design`: tries several rewrite variants
/// (no views / HV-resident views / DW-resident views / all views), enumerates
/// feasible splits for each, and returns the cheapest.
pub fn optimize(
    raw_plan: &LogicalPlan,
    design: &Design,
    env: &OptimizerEnv<'_>,
) -> Result<PlannedQuery> {
    let mut obs = miso_obs::span("optimizer.optimize");
    miso_obs::count("optimizer.calls", 1);
    let variants: Vec<HashSet<String>> = {
        let mut v: Vec<HashSet<String>> = vec![HashSet::new()];
        for candidate in [
            design.hv_views.clone(),
            design.dw_views.clone(),
            design.all_views(),
        ] {
            if !candidate.is_empty() && !v.contains(&candidate) {
                v.push(candidate);
            }
        }
        v
    };

    let n_variants = variants.len() as u64;
    let mut cost_evals = 0u64;
    let mut splits_seen = 0u64;
    let mut best: Option<PlannedQuery> = None;
    for available in variants {
        let rewrite = match env.catalog {
            Some(catalog) => rewrite_with_catalog(raw_plan, &available, catalog),
            None => rewrite_with_views(raw_plan, &available),
        };
        let estimates = estimate_plan(&rewrite.plan, env.stats);
        for split in enumerate_splits(&rewrite.plan) {
            splits_seen += 1;
            if !split_feasible(&rewrite.plan, &split, design) {
                continue;
            }
            cost_evals += 1;
            let est = estimate_split_cost(
                &rewrite.plan,
                &split,
                &estimates,
                env.hv,
                env.dw,
                env.transfer,
            );
            let better = match &best {
                None => true,
                Some(b) => est.total() < b.est.total(),
            };
            if better {
                best = Some(PlannedQuery {
                    plan: rewrite.plan.clone(),
                    split,
                    used_views: rewrite.used.clone(),
                    est,
                });
            }
        }
    }
    miso_obs::count("optimizer.cost_evals", cost_evals);
    if obs.is_active() {
        obs.push_field("variants", miso_obs::FieldValue::U64(n_variants));
        obs.push_field("splits", miso_obs::FieldValue::U64(splits_seen));
        obs.push_field("cost_evals", miso_obs::FieldValue::U64(cost_evals));
        if let Some(b) = &best {
            obs.push_field(
                "best_us",
                miso_obs::FieldValue::U64(b.est.total().as_micros()),
            );
            obs.push_field(
                "used_views",
                miso_obs::FieldValue::U64(b.used_views.len() as u64),
            );
        }
        miso_obs::observe("optimizer.splits_considered", splits_seen);
    }
    best.ok_or_else(|| {
        MisoError::Optimize(
            "no feasible multistore plan (is a DW-only view scanned below a UDF?)".into(),
        )
    })
}

/// A split is feasible under a design iff every view scan runs in a store
/// that actually holds the view.
pub fn split_feasible(plan: &LogicalPlan, split: &Split, design: &Design) -> bool {
    for node in plan.nodes() {
        if let Operator::ScanView { view, .. } = &node.op {
            let available = if split.in_hv(node.id) {
                design.hv_views.contains(view)
            } else {
                design.dw_views.contains(view)
            };
            if !available {
                return false;
            }
        }
    }
    true
}

/// What-if mode: estimated total cost of `raw_plan` under a hypothetical
/// design. This is the probe the MISO tuner calls while packing knapsacks
/// ("we have added a what-if mode to the optimizer, which can evaluate the
/// cost of a multistore plan given a hypothetical physical design").
pub fn what_if_cost(
    raw_plan: &LogicalPlan,
    design: &Design,
    env: &OptimizerEnv<'_>,
) -> SimDuration {
    miso_obs::count("optimizer.what_if_calls", 1);
    optimize(raw_plan, design, env)
        .map(|p| p.est.total())
        .unwrap_or(SimDuration::from_secs(u64::MAX / 2_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_common::ids::NodeId;
    use miso_lang::{compile, Catalog};
    use miso_plan::estimate::MapStats;
    use miso_plan::fingerprint::fingerprint_subtree;

    fn stats() -> MapStats {
        let mut s = MapStats::new();
        s.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
        s.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
        s.set_log("landmarks", 900.0, 900.0 * 190.0);
        s
    }

    fn plan(sql: &str) -> LogicalPlan {
        compile(sql, &Catalog::standard()).unwrap()
    }

    fn env<'a>(
        stats: &'a MapStats,
        hv: &'a HvCostModel,
        dw: &'a DwCostModel,
        tm: &'a TransferModel,
    ) -> OptimizerEnv<'a> {
        OptimizerEnv {
            stats,
            hv,
            dw,
            transfer: tm,
            catalog: None,
        }
    }

    #[test]
    fn cold_design_picks_late_split_or_hv_only() {
        let s = stats();
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let p = plan(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
        );
        let chosen = optimize(&p, &Design::new(), &env(&s, &hv, &dw, &tm)).unwrap();
        assert!(chosen.used_views.is_empty());
        // The HV side must include the scan (only HV holds logs).
        assert!(chosen.split.in_hv(NodeId(0)));
        // Cold multistore gain is modest: HV dominates the plan.
        let hv_frac = chosen.est.hv.as_secs_f64() / chosen.est.total().as_secs_f64();
        assert!(hv_frac > 0.5, "HV-heavy when no views exist, got {hv_frac}");
    }

    #[test]
    fn dw_resident_view_enables_dw_execution() {
        let s = stats();
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let p = plan(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
        );
        // Materialize the filtered extraction (node below the pre-agg
        // projection) as a view resident in DW.
        let filt = p
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap()
            .id;
        let vname = fingerprint_subtree(&p, filt).view_name();
        let mut s2 = stats();
        s2.set_view(vname.clone(), 3_000.0, 3_000.0 * 40.0);
        let design = Design {
            hv_views: HashSet::new(),
            dw_views: [vname.clone()].into_iter().collect(),
        };
        let chosen = optimize(&p, &design, &env(&s2, &hv, &dw, &tm)).unwrap();
        assert_eq!(chosen.used_views, vec![vname]);
        assert!(chosen.split.is_dw_only(), "query bypasses HV entirely");
        let cold = optimize(&p, &Design::new(), &env(&s, &hv, &dw, &tm)).unwrap();
        assert!(
            chosen.est.total().as_secs_f64() < cold.est.total().as_secs_f64() / 10.0,
            "DW-resident view should be dramatically faster"
        );
    }

    #[test]
    fn hv_only_view_cannot_serve_dw_side() {
        let p = plan("SELECT t.city AS c FROM twitter t WHERE t.followers > 1000");
        let filt = p
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap()
            .id;
        let vname = fingerprint_subtree(&p, filt).view_name();
        let rewrite = miso_views::rewrite_with_views(&p, &[vname.clone()].into_iter().collect());
        let design_hv = Design {
            hv_views: [vname.clone()].into_iter().collect(),
            dw_views: HashSet::new(),
        };
        // A DW-only split over the rewritten plan is infeasible when the view
        // lives only in HV.
        let dw_split = Split::all_dw();
        assert!(!split_feasible(&rewrite.plan, &dw_split, &design_hv));
        let design_dw = Design {
            hv_views: HashSet::new(),
            dw_views: [vname].into_iter().collect(),
        };
        assert!(split_feasible(&rewrite.plan, &dw_split, &design_dw));
    }

    #[test]
    fn udf_query_still_optimizes() {
        let mut catalog = Catalog::standard();
        catalog.add_udf(
            "extract_mentions",
            miso_data::Schema::new(vec![
                miso_data::Field::new("user_id", miso_data::DataType::Int),
                miso_data::Field::new("mention", miso_data::DataType::Str),
            ]),
        );
        let p = compile(
            "SELECT m.mention AS mention, COUNT(*) AS n \
             FROM APPLY(extract_mentions, twitter) m GROUP BY m.mention",
            &catalog,
        )
        .unwrap();
        let s = stats();
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let chosen = optimize(&p, &Design::new(), &env(&s, &hv, &dw, &tm)).unwrap();
        // The UDF must stay in HV.
        let udf = p
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Udf { .. }))
            .unwrap()
            .id;
        assert!(chosen.split.in_hv(udf));
    }

    #[test]
    fn what_if_cost_monotone_in_views() {
        let s = stats();
        let hv = HvCostModel::paper_default();
        let dw = DwCostModel::paper_default();
        let tm = TransferModel::paper_default();
        let p = plan(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 1000 GROUP BY t.city",
        );
        let filt = p
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap()
            .id;
        let vname = fingerprint_subtree(&p, filt).view_name();
        let mut s2 = s.clone();
        s2.set_view(vname.clone(), 3_000.0, 3_000.0 * 40.0);

        let cold = what_if_cost(&p, &Design::new(), &env(&s, &hv, &dw, &tm));
        let with_view = what_if_cost(
            &p,
            &Design {
                hv_views: [vname.clone()].into_iter().collect(),
                dw_views: [vname].into_iter().collect(),
            },
            &env(&s2, &hv, &dw, &tm),
        );
        assert!(with_view < cold);
    }
}
