//! HiveQL-subset front-end.
//!
//! The paper's queries "are declarative and posed directly over the log
//! data, such that the log schema of interest is specified within the query
//! itself and is extracted during query execution", written in HiveQL with
//! UDFs. This crate implements the subset that workload needs:
//!
//! ```sql
//! SELECT t.user_id AS uid, COUNT(*) AS n
//! FROM twitter t JOIN foursquare f ON t.user_id = f.user_id
//! WHERE array_contains(t.hashtags, 'pizza') AND f.likes > 10
//! GROUP BY t.user_id
//! HAVING COUNT(*) > 2
//! ORDER BY n DESC
//! LIMIT 100
//! ```
//!
//! plus derived tables `(SELECT ...) alias` and table-valued UDF application
//! `APPLY(udf_name, table_ref) alias` (our rendering of Hive's
//! `TRANSFORM ... USING`).
//!
//! Field references like `t.user_id` lower to JSON field extraction from the
//! log's `record` column, cast per the [`Catalog`]'s per-log field type hints
//! — exactly the SerDe role in Hive.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`lower`] →
//! [`miso_plan::LogicalPlan`].

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use miso_common::Result;
use miso_data::{DataType, Schema};
use miso_plan::LogicalPlan;
use std::collections::HashMap;

/// Name-resolution context: which logs exist, what their well-known field
/// types are (the SerDe hints), and which UDFs are declared.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    logs: HashMap<String, HashMap<String, DataType>>,
    udfs: HashMap<String, Schema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base log and its field type hints. Fields not listed
    /// still resolve, with type `Json`.
    pub fn add_log(
        &mut self,
        name: impl Into<String>,
        fields: impl IntoIterator<Item = (&'static str, DataType)>,
    ) {
        self.logs.insert(
            name.into(),
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Registers a UDF's declared output schema.
    pub fn add_udf(&mut self, name: impl Into<String>, output: Schema) {
        self.udfs.insert(name.into(), output);
    }

    /// Whether `name` is a known base log.
    pub fn has_log(&self, name: &str) -> bool {
        self.logs.contains_key(name)
    }

    /// The hinted type of `log.field`, if any.
    pub fn field_hint(&self, log: &str, field: &str) -> Option<DataType> {
        self.logs.get(log).and_then(|m| m.get(field)).copied()
    }

    /// The declared output schema of a UDF.
    pub fn udf_output(&self, name: &str) -> Option<&Schema> {
        self.udfs.get(name)
    }

    /// The standard catalog for the three synthetic logs, with SerDe hints
    /// matching `miso_data::logs`.
    pub fn standard() -> Self {
        use DataType::*;
        let mut c = Catalog::new();
        c.add_log(
            "twitter",
            [
                ("tweet_id", Int),
                ("user_id", Int),
                ("ts", Int),
                ("text", Str),
                ("hashtags", Json),
                ("retweets", Int),
                ("followers", Int),
                ("lang", Str),
                ("city", Str),
                ("sentiment", Float),
            ],
        );
        c.add_log(
            "foursquare",
            [
                ("checkin_id", Int),
                ("user_id", Int),
                ("venue_id", Int),
                ("ts", Int),
                ("likes", Int),
                ("with_friends", Bool),
                ("city", Str),
            ],
        );
        c.add_log(
            "landmarks",
            [
                ("venue_id", Int),
                ("name", Str),
                ("category", Str),
                ("city", Str),
                ("lat", Float),
                ("lon", Float),
                ("rating", Float),
                ("price_tier", Int),
            ],
        );
        c
    }
}

/// Parses and lowers a HiveQL query to a logical plan in one call.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let mut obs = miso_obs::span("lang.compile");
    miso_obs::count("lang.queries_compiled", 1);
    let query = parser::parse(sql)?;
    let plan = lower::lower(&query, catalog)?;
    if obs.is_active() {
        obs.push_field("sql_bytes", miso_obs::FieldValue::U64(sql.len() as u64));
        obs.push_field("plan_nodes", miso_obs::FieldValue::U64(plan.len() as u64));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_has_three_logs() {
        let c = Catalog::standard();
        for log in ["twitter", "foursquare", "landmarks"] {
            assert!(c.has_log(log));
        }
        assert_eq!(c.field_hint("twitter", "user_id"), Some(DataType::Int));
        assert_eq!(c.field_hint("twitter", "nope"), None);
        assert!(!c.has_log("instagram"));
    }

    #[test]
    fn compile_end_to_end_smoke() {
        let plan = compile(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
            &Catalog::standard(),
        )
        .unwrap();
        assert_eq!(plan.schema().names(), vec!["city", "n"]);
        assert_eq!(plan.base_logs(), vec!["twitter"]);
    }
}
