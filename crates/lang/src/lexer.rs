//! HiveQL tokenizer.
//!
//! Case-insensitive keywords, single-quoted string literals with `''`
//! escaping, integer/float numerics, identifiers with `.` qualification
//! handled at the parser level, and the usual operator set.

use miso_common::{MisoError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased at lexing time).
    Keyword(Keyword),
    /// Identifier (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// End of input sentinel.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Join,
    On,
    As,
    And,
    Or,
    Not,
    Is,
    Null,
    True,
    False,
    Asc,
    Desc,
    Cast,
    Apply,
    Distinct,
    Int,
    Float,
    String,
    Bool,
    Like,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "JOIN" => Keyword::Join,
            "ON" => Keyword::On,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "CAST" => Keyword::Cast,
            "APPLY" => Keyword::Apply,
            "DISTINCT" => Keyword::Distinct,
            "INT" | "BIGINT" => Keyword::Int,
            "FLOAT" | "DOUBLE" => Keyword::Float,
            "STRING" | "VARCHAR" => Keyword::String,
            "BOOL" | "BOOLEAN" => Keyword::Bool,
            "LIKE" => Keyword::Like,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenizes `input`; the final token is always [`Token::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => pos += 1,
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                // SQL line comment
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                tokens.push(Token::LParen);
                pos += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                pos += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                pos += 1;
            }
            b'.' => {
                tokens.push(Token::Dot);
                pos += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                pos += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                pos += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                pos += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                pos += 1;
            }
            b'%' => {
                tokens.push(Token::Percent);
                pos += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                pos += 1;
            }
            b'!' if bytes.get(pos + 1) == Some(&b'=') => {
                tokens.push(Token::Ne);
                pos += 2;
            }
            b'<' => match bytes.get(pos + 1) {
                Some(b'=') => {
                    tokens.push(Token::Le);
                    pos += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Ne);
                    pos += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    pos += 1;
                }
            },
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    pos += 2;
                } else {
                    tokens.push(Token::Gt);
                    pos += 1;
                }
            }
            b'\'' => {
                let (s, next) = lex_string(input, pos)?;
                tokens.push(Token::Str(s));
                pos = next;
            }
            b'0'..=b'9' => {
                let (t, next) = lex_number(input, pos)?;
                tokens.push(t);
                pos = next;
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let word = &input[start..pos];
                match Keyword::from_str(word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Ident(word.to_string())),
                }
            }
            other => {
                return Err(MisoError::Parse(format!(
                    "unexpected character `{}` at byte {pos}",
                    other as char
                )))
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut pos = start + 1;
    let mut out = String::new();
    while pos < bytes.len() {
        if bytes[pos] == b'\'' {
            if bytes.get(pos + 1) == Some(&b'\'') {
                out.push('\'');
                pos += 2;
            } else {
                return Ok((out, pos + 1));
            }
        } else {
            // Strings are UTF-8; copy char-wise.
            let c = input[pos..].chars().next().expect("valid utf8");
            out.push(c);
            pos += c.len_utf8();
        }
    }
    Err(MisoError::Parse(format!(
        "unterminated string literal starting at byte {start}"
    )))
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut pos = start;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    let mut is_float = false;
    if pos < bytes.len() && bytes[pos] == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)
    {
        is_float = true;
        pos += 1;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    let text = &input[start..pos];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), pos))
            .map_err(|_| MisoError::Parse(format!("bad float literal `{text}`")))
    } else {
        text.parse::<i64>()
            .map(|i| (Token::Int(i), pos))
            .map_err(|_| MisoError::Parse(format!("bad integer literal `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_query() {
        let toks = lex("SELECT t.user_id AS uid, COUNT(*) FROM twitter t WHERE t.followers >= 100")
            .unwrap();
        assert!(toks.contains(&Token::Keyword(Keyword::Select)));
        assert!(toks.contains(&Token::Ident("user_id".into())));
        assert!(toks.contains(&Token::Ge));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select FROM gRoUp").unwrap();
        assert_eq!(
            toks[..3],
            [
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Group)
            ]
        );
    }

    #[test]
    fn string_escaping() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks[0], Token::Str("it's".into()));
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42").unwrap()[0], Token::Int(42));
        assert_eq!(lex("3.5").unwrap()[0], Token::Float(3.5));
        // `1.` is Int then Dot (qualified-name dot must stay usable)
        let toks = lex("1.x").unwrap();
        assert_eq!(toks[0], Token::Int(1));
        assert_eq!(toks[1], Token::Dot);
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks[..7],
            [
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT -- the works\n 1").unwrap();
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("SELECT ~ 1").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(lex("'caffè 好'").unwrap()[0], Token::Str("caffè 好".into()));
    }
}
