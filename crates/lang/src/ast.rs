//! Abstract syntax for the HiveQL subset.

use miso_data::DataType;

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Select-list items.
    pub select: Vec<SelectItem>,
    /// FROM clause: first table plus zero or more joins.
    pub from: FromClause,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING predicate.
    pub having: Option<SqlExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row cap.
    pub limit: Option<u64>,
}

/// One select-list item: expression plus optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

/// FROM clause: a left-deep join chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// The leftmost table.
    pub first: TableRef,
    /// `JOIN <table> ON <cond>` items, applied left to right.
    pub joins: Vec<JoinItem>,
}

/// One join step.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinItem {
    /// The joined table.
    pub table: TableRef,
    /// The ON condition.
    pub on: SqlExpr,
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base log: `twitter t`.
    Base {
        /// Log name.
        name: String,
        /// Alias (defaults to the log name).
        alias: String,
    },
    /// A derived table: `(SELECT ...) alias`.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Alias (required).
        alias: String,
    },
    /// Table-valued UDF application: `APPLY(udf, <table_ref>) alias`.
    Apply {
        /// UDF name.
        udf: String,
        /// Input table.
        input: Box<TableRef>,
        /// Alias (required).
        alias: String,
    },
}

impl TableRef {
    /// The alias this reference binds.
    pub fn alias(&self) -> &str {
        match self {
            TableRef::Base { alias, .. }
            | TableRef::Derived { alias, .. }
            | TableRef::Apply { alias, .. } => alias,
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression (an output-column reference in practice).
    pub expr: SqlExpr,
    /// Descending?
    pub desc: bool,
}

/// Surface-syntax expressions (pre name-resolution).
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `alias.field` or bare `name` (resolved during lowering).
    Column {
        /// Qualifier, if written.
        qualifier: Option<String>,
        /// Column/field name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL literal.
    Null,
    /// Binary operation (surface operator names from the lexer).
    Binary {
        /// Operator.
        op: SqlBinOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `-expr`.
    Neg(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Negated (`IS NOT NULL`)?
        negated: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<SqlExpr>,
        /// Target type.
        ty: DataType,
    },
    /// Function call: scalar builtin or aggregate.
    Call {
        /// Function name (lower-cased).
        name: String,
        /// `DISTINCT` flag (only meaningful for COUNT).
        distinct: bool,
        /// `f(*)` star-argument (COUNT(*)).
        star: bool,
        /// Arguments.
        args: Vec<SqlExpr>,
    },
}

/// Surface binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Like,
}

impl SqlExpr {
    /// Shorthand column reference.
    pub fn col(qualifier: Option<&str>, name: &str) -> SqlExpr {
        SqlExpr::Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
        }
    }

    /// Whether this expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Call { name, .. } if is_aggregate_name(name) => true,
            SqlExpr::Call { args, .. } => args.iter().any(SqlExpr::contains_aggregate),
            SqlExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.contains_aggregate(),
            SqlExpr::IsNull { expr, .. } | SqlExpr::Cast { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// The set of qualifiers referenced by this expression.
    pub fn qualifiers(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let SqlExpr::Column {
                qualifier: Some(q), ..
            } = e
            {
                out.push(q.as_str());
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Pre-order traversal.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SqlExpr)) {
        f(self);
        match self {
            SqlExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            SqlExpr::Not(e) | SqlExpr::Neg(e) => e.visit(f),
            SqlExpr::IsNull { expr, .. } | SqlExpr::Cast { expr, .. } => expr.visit(f),
            SqlExpr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }
}

/// Whether a function name denotes an aggregate.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "min" | "max" | "avg")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_structure() {
        let agg = SqlExpr::Call {
            name: "count".into(),
            distinct: false,
            star: true,
            args: vec![],
        };
        let wrapped = SqlExpr::Binary {
            op: SqlBinOp::Gt,
            left: Box::new(agg),
            right: Box::new(SqlExpr::Int(5)),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!SqlExpr::col(Some("t"), "x").contains_aggregate());
        let scalar_call = SqlExpr::Call {
            name: "lower".into(),
            distinct: false,
            star: false,
            args: vec![SqlExpr::col(None, "x")],
        };
        assert!(!scalar_call.contains_aggregate());
    }

    #[test]
    fn qualifiers_dedup() {
        let e = SqlExpr::Binary {
            op: SqlBinOp::And,
            left: Box::new(SqlExpr::col(Some("t"), "a")),
            right: Box::new(SqlExpr::Binary {
                op: SqlBinOp::Eq,
                left: Box::new(SqlExpr::col(Some("t"), "b")),
                right: Box::new(SqlExpr::col(Some("f"), "c")),
            }),
        };
        assert_eq!(e.qualifiers(), vec!["f", "t"]);
    }

    #[test]
    fn table_ref_alias() {
        let base = TableRef::Base {
            name: "twitter".into(),
            alias: "t".into(),
        };
        assert_eq!(base.alias(), "t");
    }
}
