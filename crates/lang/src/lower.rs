//! Lowering: AST → logical plan.
//!
//! Produces exactly the plan shapes the paper's queries exhibit on Hive:
//!
//! ```text
//! ScanLog → Project(extract fields)  [per table]
//!         → Filter(pushed-down single-table predicates)
//!         → Join ...                 [left-deep]
//!         → Filter(cross-table predicates)
//!         → Project(group keys + agg args) → Aggregate → Filter(HAVING)
//!         → Project(select list) → Sort → Limit
//! ```
//!
//! Field references `t.user_id` become JSON extraction + SerDe cast from the
//! log's single `record` column; only the fields a query actually touches
//! are extracted ("the log schema of interest is specified within the query
//! itself"). Single-table WHERE conjuncts are pushed below joins, as Hive
//! does — this is also what gives opportunistic views their selective,
//! reusable shapes.

use crate::ast::*;
use crate::Catalog;
use miso_common::ids::NodeId;
use miso_common::{MisoError, Result};
use miso_data::DataType;
use miso_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder, UnaryOp};
use std::collections::{HashMap, HashSet};

/// Lowers a parsed query against a catalog.
pub fn lower(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    let mut builder = PlanBuilder::new();
    let root = lower_query(query, catalog, &mut builder)?;
    builder.finish(root)
}

/// Column scope over the joined FROM result: alias → ordered column names,
/// flattened positionally.
#[derive(Debug, Clone)]
struct Scope {
    entries: Vec<(String, Vec<String>)>,
}

impl Scope {
    fn single(alias: &str, cols: Vec<String>) -> Scope {
        Scope {
            entries: vec![(alias.to_string(), cols)],
        }
    }

    fn push(&mut self, alias: &str, cols: Vec<String>) {
        self.entries.push((alias.to_string(), cols));
    }

    fn arity(&self) -> usize {
        self.entries.iter().map(|(_, c)| c.len()).sum()
    }

    fn offset_of_alias(&self, alias: &str) -> Option<usize> {
        let mut offset = 0;
        for (a, cols) in &self.entries {
            if a == alias {
                return Some(offset);
            }
            offset += cols.len();
        }
        None
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        match qualifier {
            Some(q) => {
                let offset = self
                    .offset_of_alias(q)
                    .ok_or_else(|| MisoError::Analysis(format!("unknown table alias `{q}`")))?;
                let (_, cols) = self
                    .entries
                    .iter()
                    .find(|(a, _)| a == q)
                    .expect("alias just found");
                let idx = cols
                    .iter()
                    .position(|c| c == name)
                    .ok_or_else(|| MisoError::Analysis(format!("no column `{name}` in `{q}`")))?;
                Ok(offset + idx)
            }
            None => {
                let mut hits = Vec::new();
                let mut offset = 0;
                for (_, cols) in &self.entries {
                    if let Some(idx) = cols.iter().position(|c| c == name) {
                        hits.push(offset + idx);
                    }
                    offset += cols.len();
                }
                match hits.len() {
                    0 => Err(MisoError::Analysis(format!("unknown column `{name}`"))),
                    1 => Ok(hits[0]),
                    _ => Err(MisoError::Analysis(format!("ambiguous column `{name}`"))),
                }
            }
        }
    }
}

fn lower_query(query: &Query, catalog: &Catalog, b: &mut PlanBuilder) -> Result<NodeId> {
    // 1. Which fields does each base-log alias need extracted?
    let fields_by_alias = collect_fields(query)?;

    // 2. Partition WHERE into per-alias pushdown conjuncts and residual.
    let (pushdown, residual_where) = partition_where(query);

    // 3. Build each FROM branch.
    let (mut node, mut scope) =
        lower_table_ref(&query.from.first, catalog, b, &fields_by_alias, &pushdown)?;

    // 4. Left-deep joins.
    for join in &query.from.joins {
        let (right_node, right_scope) =
            lower_table_ref(&join.table, catalog, b, &fields_by_alias, &pushdown)?;
        let left_arity = scope.arity();
        let mut joined_scope = scope.clone();
        for (alias, cols) in &right_scope.entries {
            joined_scope.push(alias, cols.clone());
        }
        // Split ON into equi-conjuncts (left col = right col) and residue.
        let mut on_pairs: Vec<(usize, usize)> = Vec::new();
        let mut residue: Vec<Expr> = Vec::new();
        for conjunct in conjuncts_of(&join.on) {
            if let Some((l, r)) = as_equi_pair(conjunct, &scope, &right_scope, left_arity)? {
                on_pairs.push((l, r));
            } else {
                residue.push(resolve_expr(conjunct, &joined_scope, catalog)?);
            }
        }
        if on_pairs.is_empty() {
            return Err(MisoError::Analysis(
                "JOIN requires at least one equality condition between the two sides".into(),
            ));
        }
        node = b.add(Operator::Join { on: on_pairs }, vec![node, right_node])?;
        if let Some(pred) = Expr::conjoin(residue) {
            node = b.add(Operator::Filter { predicate: pred }, vec![node])?;
        }
        scope = joined_scope;
    }

    // 5. Residual WHERE above the joins.
    if let Some(w) = residual_where {
        let pred = resolve_expr(&w, &scope, catalog)?;
        node = b.add(Operator::Filter { predicate: pred }, vec![node])?;
    }

    // 6. Aggregation pipeline or plain projection.
    let has_agg = !query.group_by.is_empty()
        || query.select.iter().any(|s| s.expr.contains_aggregate())
        || query
            .having
            .as_ref()
            .is_some_and(SqlExpr::contains_aggregate);

    let (node, out_names) = if has_agg {
        lower_aggregation(query, catalog, b, node, &scope)?
    } else {
        lower_plain_select(query, catalog, b, node, &scope)?
    };
    let mut node = node;

    // 7. ORDER BY over the output schema.
    if !query.order_by.is_empty() {
        let mut keys = Vec::new();
        for key in &query.order_by {
            let idx = resolve_output_column(&key.expr, &out_names, query)?;
            keys.push((idx, key.desc));
        }
        node = b.add(Operator::Sort { keys }, vec![node])?;
    }

    // 8. LIMIT.
    if let Some(n) = query.limit {
        node = b.add(Operator::Limit { n }, vec![node])?;
    }
    Ok(node)
}

/// Collects, per base-log alias, the set of fields the query extracts.
fn collect_fields(query: &Query) -> Result<HashMap<String, Vec<String>>> {
    // Select aliases shadow table fields in HAVING/ORDER BY.
    let select_aliases: HashSet<&str> = query
        .select
        .iter()
        .filter_map(|s| s.alias.as_deref())
        .collect();

    let base_aliases: Vec<&str> = {
        let mut v = vec![query.from.first.alias()];
        v.extend(query.from.joins.iter().map(|j| j.table.alias()));
        v
    };
    let single_base = if base_aliases.len() == 1 {
        Some(base_aliases[0])
    } else {
        None
    };

    let mut fields: HashMap<String, Vec<String>> = HashMap::new();
    let mut add = |alias: &str, name: &str| {
        let list = fields.entry(alias.to_string()).or_default();
        if !list.iter().any(|f| f == name) {
            list.push(name.to_string());
        }
    };
    // (Field lists are sorted canonically below, so two queries touching the
    // same fields of a log produce identical extraction projections — and
    // therefore identical opportunistic-view fingerprints — regardless of
    // the order the fields appear in the query text.)
    let mut visit = |e: &SqlExpr, allow_bare_alias: bool| {
        e.visit(&mut |sub| {
            if let SqlExpr::Column { qualifier, name } = sub {
                match qualifier {
                    Some(q) => add(q, name),
                    None => {
                        if allow_bare_alias && select_aliases.contains(name.as_str()) {
                            // references a select alias, not a field
                        } else if let Some(alias) = single_base {
                            add(alias, name);
                        }
                        // multi-table unqualified bare names fail later at
                        // resolution with a precise error.
                    }
                }
            }
        });
    };
    for item in &query.select {
        visit(&item.expr, false);
    }
    if let Some(w) = &query.where_clause {
        visit(w, false);
    }
    for join in &query.from.joins {
        visit(&join.on, false);
    }
    for g in &query.group_by {
        visit(g, false);
    }
    if let Some(h) = &query.having {
        visit(h, true);
    }
    for k in &query.order_by {
        visit(&k.expr, true);
    }
    for list in fields.values_mut() {
        list.sort();
    }
    Ok(fields)
}

/// Splits WHERE into (alias → pushable conjuncts) and the residual predicate.
fn partition_where(query: &Query) -> (HashMap<String, Vec<SqlExpr>>, Option<SqlExpr>) {
    let mut pushdown: HashMap<String, Vec<SqlExpr>> = HashMap::new();
    let mut residual: Vec<SqlExpr> = Vec::new();
    if let Some(w) = &query.where_clause {
        for conjunct in conjuncts_of(w) {
            let quals = conjunct.qualifiers();
            if quals.len() == 1 && fully_qualified(conjunct) {
                pushdown
                    .entry(quals[0].to_string())
                    .or_default()
                    .push(conjunct.clone());
            } else {
                residual.push(conjunct.clone());
            }
        }
    }
    let residual = residual.into_iter().reduce(|acc, e| SqlExpr::Binary {
        op: SqlBinOp::And,
        left: Box::new(acc),
        right: Box::new(e),
    });
    (pushdown, residual)
}

/// True iff every column reference in `e` carries a qualifier.
fn fully_qualified(e: &SqlExpr) -> bool {
    let mut ok = true;
    e.visit(&mut |sub| {
        if let SqlExpr::Column {
            qualifier: None, ..
        } = sub
        {
            ok = false;
        }
    });
    ok
}

fn conjuncts_of(e: &SqlExpr) -> Vec<&SqlExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a SqlExpr, out: &mut Vec<&'a SqlExpr>) {
        if let SqlExpr::Binary {
            op: SqlBinOp::And,
            left,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

/// Recognizes `a.x = b.y` with `a` on the accumulated left side and `b` on
/// the newly joined right side (either orientation).
fn as_equi_pair(
    e: &SqlExpr,
    left: &Scope,
    right: &Scope,
    _left_arity: usize,
) -> Result<Option<(usize, usize)>> {
    let SqlExpr::Binary {
        op: SqlBinOp::Eq,
        left: l,
        right: r,
    } = e
    else {
        return Ok(None);
    };
    let (
        SqlExpr::Column {
            qualifier: Some(lq),
            name: ln,
        },
        SqlExpr::Column {
            qualifier: Some(rq),
            name: rn,
        },
    ) = (l.as_ref(), r.as_ref())
    else {
        return Ok(None);
    };
    let in_left = |q: &str| left.offset_of_alias(q).is_some();
    let in_right = |q: &str| right.offset_of_alias(q).is_some();
    if in_left(lq) && in_right(rq) {
        Ok(Some((
            left.resolve(Some(lq), ln)?,
            right.resolve(Some(rq), rn)?,
        )))
    } else if in_left(rq) && in_right(lq) {
        Ok(Some((
            left.resolve(Some(rq), rn)?,
            right.resolve(Some(lq), ln)?,
        )))
    } else {
        Ok(None)
    }
}

/// Builds one FROM branch; returns its root node and scope.
fn lower_table_ref(
    table: &TableRef,
    catalog: &Catalog,
    b: &mut PlanBuilder,
    fields_by_alias: &HashMap<String, Vec<String>>,
    pushdown: &HashMap<String, Vec<SqlExpr>>,
) -> Result<(NodeId, Scope)> {
    match table {
        TableRef::Base { name, alias } => {
            if !catalog.has_log(name) {
                return Err(MisoError::Analysis(format!("unknown log `{name}`")));
            }
            let fields = fields_by_alias.get(alias).cloned().unwrap_or_default();
            if fields.is_empty() {
                return Err(MisoError::Analysis(format!(
                    "table `{alias}` is never referenced; remove it or reference a field"
                )));
            }
            let scan = b.add(Operator::ScanLog { log: name.clone() }, vec![])?;
            let exprs: Vec<(String, Expr)> = fields
                .iter()
                .map(|f| {
                    let extract = Expr::col(0).get(f.clone());
                    let e = match catalog.field_hint(name, f) {
                        Some(ty) if ty != DataType::Json => extract.cast(ty),
                        _ => extract,
                    };
                    (f.clone(), e)
                })
                .collect();
            let mut node = b.add(Operator::Project { exprs }, vec![scan])?;
            let scope = Scope::single(alias, fields);
            node = apply_pushdown(alias, node, &scope, pushdown, catalog, b)?;
            Ok((node, scope))
        }
        TableRef::Derived { query, alias } => {
            let sub_root = lower_query(query, catalog, b)?;
            let cols = derived_columns(query)?;
            let scope = Scope::single(alias, cols);
            let node = apply_pushdown(alias, sub_root, &scope, pushdown, catalog, b)?;
            Ok((node, scope))
        }
        TableRef::Apply { udf, input, alias } => {
            let output = catalog
                .udf_output(udf)
                .ok_or_else(|| MisoError::Analysis(format!("unknown UDF `{udf}`")))?
                .clone();
            // The UDF consumes the *raw* rows of its input: a bare scan for
            // base logs (user code reads the JSON record), or the derived
            // plan's output rows.
            let input_node = match input.as_ref() {
                TableRef::Base { name, .. } => {
                    if !catalog.has_log(name) {
                        return Err(MisoError::Analysis(format!("unknown log `{name}`")));
                    }
                    b.add(Operator::ScanLog { log: name.clone() }, vec![])?
                }
                other => lower_table_ref(other, catalog, b, fields_by_alias, pushdown)?.0,
            };
            let node = b.add(
                Operator::Udf {
                    name: udf.clone(),
                    output: output.clone(),
                },
                vec![input_node],
            )?;
            let cols = output.fields().iter().map(|f| f.name.clone()).collect();
            let scope = Scope::single(alias, cols);
            let node = apply_pushdown(alias, node, &scope, pushdown, catalog, b)?;
            Ok((node, scope))
        }
    }
}

fn apply_pushdown(
    alias: &str,
    node: NodeId,
    scope: &Scope,
    pushdown: &HashMap<String, Vec<SqlExpr>>,
    catalog: &Catalog,
    b: &mut PlanBuilder,
) -> Result<NodeId> {
    let Some(conjuncts) = pushdown.get(alias) else {
        return Ok(node);
    };
    let resolved: Vec<Expr> = conjuncts
        .iter()
        .map(|c| resolve_expr(c, scope, catalog))
        .collect::<Result<_>>()?;
    match Expr::conjoin(resolved) {
        Some(pred) => Ok(b.add(Operator::Filter { predicate: pred }, vec![node])?),
        None => Ok(node),
    }
}

/// Output column names of a derived table.
fn derived_columns(query: &Query) -> Result<Vec<String>> {
    query
        .select
        .iter()
        .enumerate()
        .map(|(i, item)| match (&item.alias, &item.expr) {
            (Some(a), _) => Ok(a.clone()),
            (None, SqlExpr::Column { name, .. }) => Ok(name.clone()),
            _ => Err(MisoError::Analysis(format!(
                "select item {i} of a derived table needs an alias"
            ))),
        })
        .collect()
}

/// Resolves a surface expression against a scope.
#[allow(clippy::only_used_in_recursion)] // kept for future catalog-aware resolution
fn resolve_expr(e: &SqlExpr, scope: &Scope, catalog: &Catalog) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Column { qualifier, name } => {
            Expr::Column(scope.resolve(qualifier.as_deref(), name)?)
        }
        SqlExpr::Int(i) => Expr::lit(*i),
        SqlExpr::Float(f) => Expr::lit(*f),
        SqlExpr::Str(s) => Expr::lit(s.as_str()),
        SqlExpr::Bool(b) => Expr::lit(*b),
        SqlExpr::Null => Expr::Literal(miso_data::Value::Null),
        SqlExpr::Binary { op, left, right } => {
            let l = resolve_expr(left, scope, catalog)?;
            let r = resolve_expr(right, scope, catalog)?;
            match op {
                SqlBinOp::Like => Expr::Func {
                    name: "contains".into(),
                    args: vec![l, strip_like_wildcards(r)],
                },
                other => Expr::Binary {
                    op: plan_binop(*other),
                    left: Box::new(l),
                    right: Box::new(r),
                },
            }
        }
        SqlExpr::Not(inner) => Expr::Unary {
            op: UnaryOp::Not,
            input: Box::new(resolve_expr(inner, scope, catalog)?),
        },
        SqlExpr::Neg(inner) => Expr::Unary {
            op: UnaryOp::Neg,
            input: Box::new(resolve_expr(inner, scope, catalog)?),
        },
        SqlExpr::IsNull { expr, negated } => Expr::Unary {
            op: if *negated {
                UnaryOp::IsNotNull
            } else {
                UnaryOp::IsNull
            },
            input: Box::new(resolve_expr(expr, scope, catalog)?),
        },
        SqlExpr::Cast { expr, ty } => resolve_expr(expr, scope, catalog)?.cast(*ty),
        SqlExpr::Call {
            name, args, star, ..
        } => {
            if is_aggregate_name(name) {
                return Err(MisoError::Analysis(format!(
                    "aggregate `{name}` not allowed here"
                )));
            }
            if *star {
                return Err(MisoError::Analysis(format!(
                    "`{name}(*)` is only valid for COUNT"
                )));
            }
            Expr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| resolve_expr(a, scope, catalog))
                    .collect::<Result<_>>()?,
            }
        }
    })
}

/// `LIKE '%foo%'` is implemented as `contains` after stripping `%` anchors.
fn strip_like_wildcards(pattern: Expr) -> Expr {
    match pattern {
        Expr::Literal(miso_data::Value::Str(s)) => Expr::lit(s.trim_matches('%')),
        other => other,
    }
}

fn plan_binop(op: SqlBinOp) -> BinOp {
    match op {
        SqlBinOp::Add => BinOp::Add,
        SqlBinOp::Sub => BinOp::Sub,
        SqlBinOp::Mul => BinOp::Mul,
        SqlBinOp::Div => BinOp::Div,
        SqlBinOp::Mod => BinOp::Mod,
        SqlBinOp::Eq => BinOp::Eq,
        SqlBinOp::Ne => BinOp::Ne,
        SqlBinOp::Lt => BinOp::Lt,
        SqlBinOp::Le => BinOp::Le,
        SqlBinOp::Gt => BinOp::Gt,
        SqlBinOp::Ge => BinOp::Ge,
        SqlBinOp::And => BinOp::And,
        SqlBinOp::Or => BinOp::Or,
        SqlBinOp::Like => unreachable!("LIKE handled separately"),
    }
}

/// One aggregate call discovered in SELECT/HAVING.
#[derive(Debug, Clone, PartialEq)]
struct FoundAgg {
    surface: SqlExpr,
    func: AggFunc,
    arg: Option<SqlExpr>,
    name: String,
}

fn lower_aggregation(
    query: &Query,
    catalog: &Catalog,
    b: &mut PlanBuilder,
    input: NodeId,
    scope: &Scope,
) -> Result<(NodeId, Vec<String>)> {
    // Discover aggregate calls in SELECT and HAVING.
    let mut aggs: Vec<FoundAgg> = Vec::new();
    let mut discover = |e: &SqlExpr| -> Result<()> {
        let mut err = None;
        e.visit(&mut |sub| {
            if let SqlExpr::Call {
                name,
                distinct,
                star,
                args,
            } = sub
            {
                if !is_aggregate_name(name) {
                    return;
                }
                let func = match (name.as_str(), distinct, star) {
                    ("count", false, true) => AggFunc::Count,
                    ("count", true, false) => AggFunc::CountDistinct,
                    ("count", false, false) => AggFunc::Count,
                    ("sum", false, false) => AggFunc::Sum,
                    ("min", false, false) => AggFunc::Min,
                    ("max", false, false) => AggFunc::Max,
                    ("avg", false, false) => AggFunc::Avg,
                    _ => {
                        err = Some(MisoError::Analysis(format!(
                            "unsupported aggregate form `{name}`"
                        )));
                        return;
                    }
                };
                let arg = args.first().cloned();
                if args.len() > 1 {
                    err = Some(MisoError::Analysis(format!(
                        "aggregate `{name}` takes at most one argument"
                    )));
                    return;
                }
                let found = FoundAgg {
                    surface: sub.clone(),
                    func,
                    arg,
                    name: String::new(),
                };
                if !aggs.iter().any(|a| a.surface == found.surface) {
                    aggs.push(found);
                }
            }
        });
        err.map_or(Ok(()), Err)
    };
    for item in &query.select {
        discover(&item.expr)?;
    }
    if let Some(h) = &query.having {
        discover(h)?;
    }
    // Name aggregates: select-item alias when the item *is* the call.
    for agg in aggs.iter_mut() {
        let alias = query.select.iter().find_map(|item| {
            (item.expr == agg.surface)
                .then(|| item.alias.clone())
                .flatten()
        });
        agg.name = alias.unwrap_or_default();
    }
    let mut seen_names: HashSet<String> = HashSet::new();
    for (i, agg) in aggs.iter_mut().enumerate() {
        if agg.name.is_empty() || !seen_names.insert(agg.name.clone()) {
            agg.name = format!("agg{i}");
            seen_names.insert(agg.name.clone());
        }
    }

    // Group-key names: select alias when the key equals a select item.
    let group_names: Vec<String> = query
        .group_by
        .iter()
        .enumerate()
        .map(|(i, g)| {
            query
                .select
                .iter()
                .find_map(|item| (item.expr == *g).then(|| item.alias.clone()).flatten())
                .or_else(|| match g {
                    SqlExpr::Column { name, .. } => Some(name.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| format!("g{i}"))
        })
        .collect();

    // Pre-aggregation projection: group keys then aggregate args.
    let mut pre_exprs: Vec<(String, Expr)> = Vec::new();
    for (g, name) in query.group_by.iter().zip(&group_names) {
        pre_exprs.push((name.clone(), resolve_expr(g, scope, catalog)?));
    }
    let n_groups = pre_exprs.len();
    let mut agg_inputs: Vec<Option<usize>> = Vec::new();
    for (i, agg) in aggs.iter().enumerate() {
        match &agg.arg {
            Some(arg) => {
                pre_exprs.push((format!("a{i}"), resolve_expr(arg, scope, catalog)?));
                agg_inputs.push(Some(pre_exprs.len() - 1));
            }
            None => agg_inputs.push(None),
        }
    }
    // Degenerate global aggregate with no args (e.g. just COUNT(*)) still
    // needs a projection input column; reuse a constant.
    if pre_exprs.is_empty() {
        pre_exprs.push(("one".into(), Expr::lit(1i64)));
    }
    let pre = b.add(Operator::Project { exprs: pre_exprs }, vec![input])?;

    let agg_exprs: Vec<AggExpr> = aggs
        .iter()
        .zip(&agg_inputs)
        .map(|(agg, input_col)| {
            AggExpr::new(agg.func, input_col.map(Expr::Column), agg.name.clone())
        })
        .collect();
    let mut node = b.add(
        Operator::Aggregate {
            group_by: (0..n_groups).collect(),
            aggs: agg_exprs,
        },
        vec![pre],
    )?;

    // Post-aggregation schema: group names then agg names.
    let mut agg_schema_names: Vec<String> = group_names.clone();
    agg_schema_names.extend(aggs.iter().map(|a| a.name.clone()));

    // HAVING over the aggregate output.
    if let Some(h) = &query.having {
        let pred = resolve_post_agg(h, query, &group_names, &aggs, catalog)?;
        node = b.add(Operator::Filter { predicate: pred }, vec![node])?;
    }

    // Final projection in select-list order.
    let mut final_exprs: Vec<(String, Expr)> = Vec::new();
    let mut out_names = Vec::new();
    for (i, item) in query.select.iter().enumerate() {
        let name = item
            .alias
            .clone()
            .or_else(|| match &item.expr {
                SqlExpr::Column { name, .. } => Some(name.clone()),
                _ => None,
            })
            .unwrap_or_else(|| format!("c{i}"));
        let e = resolve_post_agg(&item.expr, query, &group_names, &aggs, catalog)?;
        final_exprs.push((name.clone(), e));
        out_names.push(name);
    }
    let node = b.add(Operator::Project { exprs: final_exprs }, vec![node])?;
    Ok((node, out_names))
}

/// Resolves an expression over the aggregate output (group cols, then aggs).
#[allow(clippy::only_used_in_recursion)] // kept for future catalog-aware resolution
fn resolve_post_agg(
    e: &SqlExpr,
    query: &Query,
    group_names: &[String],
    aggs: &[FoundAgg],
    catalog: &Catalog,
) -> Result<Expr> {
    // Aggregate call → its output column.
    if let Some(idx) = aggs.iter().position(|a| a.surface == *e) {
        return Ok(Expr::Column(group_names.len() + idx));
    }
    // A group-by expression used verbatim → its key column.
    if let Some(idx) = query.group_by.iter().position(|g| g == e) {
        return Ok(Expr::Column(idx));
    }
    match e {
        SqlExpr::Column {
            qualifier: None,
            name,
        } => {
            if let Some(idx) = group_names.iter().position(|g| g == name) {
                return Ok(Expr::Column(idx));
            }
            if let Some(idx) = aggs.iter().position(|a| a.name == *name) {
                return Ok(Expr::Column(group_names.len() + idx));
            }
            Err(MisoError::Analysis(format!(
                "`{name}` is neither a group key nor an aggregate"
            )))
        }
        SqlExpr::Column {
            qualifier: Some(q),
            name,
        } => Err(MisoError::Analysis(format!(
            "`{q}.{name}` must appear in GROUP BY to be selected"
        ))),
        SqlExpr::Int(i) => Ok(Expr::lit(*i)),
        SqlExpr::Float(f) => Ok(Expr::lit(*f)),
        SqlExpr::Str(s) => Ok(Expr::lit(s.as_str())),
        SqlExpr::Bool(b) => Ok(Expr::lit(*b)),
        SqlExpr::Null => Ok(Expr::Literal(miso_data::Value::Null)),
        SqlExpr::Binary { op, left, right } => {
            let l = resolve_post_agg(left, query, group_names, aggs, catalog)?;
            let r = resolve_post_agg(right, query, group_names, aggs, catalog)?;
            match op {
                SqlBinOp::Like => Ok(Expr::Func {
                    name: "contains".into(),
                    args: vec![l, strip_like_wildcards(r)],
                }),
                other => Ok(Expr::Binary {
                    op: plan_binop(*other),
                    left: Box::new(l),
                    right: Box::new(r),
                }),
            }
        }
        SqlExpr::Not(inner) => Ok(Expr::Unary {
            op: UnaryOp::Not,
            input: Box::new(resolve_post_agg(inner, query, group_names, aggs, catalog)?),
        }),
        SqlExpr::Neg(inner) => Ok(Expr::Unary {
            op: UnaryOp::Neg,
            input: Box::new(resolve_post_agg(inner, query, group_names, aggs, catalog)?),
        }),
        SqlExpr::IsNull { expr, negated } => Ok(Expr::Unary {
            op: if *negated {
                UnaryOp::IsNotNull
            } else {
                UnaryOp::IsNull
            },
            input: Box::new(resolve_post_agg(expr, query, group_names, aggs, catalog)?),
        }),
        SqlExpr::Cast { expr, ty } => {
            Ok(resolve_post_agg(expr, query, group_names, aggs, catalog)?.cast(*ty))
        }
        SqlExpr::Call { name, args, .. } => {
            if is_aggregate_name(name) {
                return Err(MisoError::Analysis(format!(
                    "aggregate `{name}` form not found in SELECT/HAVING discovery"
                )));
            }
            Ok(Expr::Func {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| resolve_post_agg(a, query, group_names, aggs, catalog))
                    .collect::<Result<_>>()?,
            })
        }
    }
}

fn lower_plain_select(
    query: &Query,
    catalog: &Catalog,
    b: &mut PlanBuilder,
    input: NodeId,
    scope: &Scope,
) -> Result<(NodeId, Vec<String>)> {
    let mut exprs = Vec::new();
    let mut out_names = Vec::new();
    for (i, item) in query.select.iter().enumerate() {
        let name = item
            .alias
            .clone()
            .or_else(|| match &item.expr {
                SqlExpr::Column { name, .. } => Some(name.clone()),
                _ => None,
            })
            .unwrap_or_else(|| format!("c{i}"));
        // Duplicate output names get positional suffixes.
        let name = if out_names.contains(&name) {
            format!("{name}_{i}")
        } else {
            name
        };
        exprs.push((name.clone(), resolve_expr(&item.expr, scope, catalog)?));
        out_names.push(name);
    }
    let node = b.add(Operator::Project { exprs }, vec![input])?;
    Ok((node, out_names))
}

/// Resolves an ORDER BY key to an output column index.
fn resolve_output_column(e: &SqlExpr, out_names: &[String], query: &Query) -> Result<usize> {
    match e {
        SqlExpr::Column {
            qualifier: None,
            name,
        } => out_names.iter().position(|n| n == name).ok_or_else(|| {
            MisoError::Analysis(format!("ORDER BY `{name}` is not an output column"))
        }),
        other => {
            // Allow ordering by a select expression written out verbatim.
            query
                .select
                .iter()
                .position(|item| item.expr == *other)
                .ok_or_else(|| {
                    MisoError::Analysis("ORDER BY expression must name an output column".into())
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Catalog;
    use miso_data::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::standard();
        c.add_udf(
            "sentiment_extract",
            Schema::new(vec![
                Field::new("user_id", DataType::Int),
                Field::new("score", DataType::Float),
            ]),
        );
        c
    }

    fn lower_sql(sql: &str) -> LogicalPlan {
        lower(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn simple_projection() {
        let p = lower_sql("SELECT t.city AS c, t.followers FROM twitter t");
        assert_eq!(p.schema().names(), vec!["c", "followers"]);
        assert_eq!(p.base_logs(), vec!["twitter"]);
        // scan -> extract-project -> select-project
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn extraction_casts_use_hints() {
        let p = lower_sql("SELECT t.followers FROM twitter t");
        assert_eq!(p.schema().field("followers").unwrap().ty, DataType::Int);
        let p2 = lower_sql("SELECT t.hashtags FROM twitter t");
        assert_eq!(p2.schema().field("hashtags").unwrap().ty, DataType::Json);
    }

    #[test]
    fn where_single_table_pushes_below_select() {
        let p = lower_sql("SELECT t.city FROM twitter t WHERE t.followers > 10");
        // scan -> extract-project -> filter (pushed) -> select-project: the
        // filter sits directly on the extraction, the same shape a joined
        // branch gets — uniform shapes make opportunistic views reusable.
        assert_eq!(p.len(), 4);
        assert!(matches!(
            p.node(miso_common::ids::NodeId(2)).op,
            Operator::Filter { .. }
        ));
        assert!(matches!(
            p.node(miso_common::ids::NodeId(3)).op,
            Operator::Project { .. }
        ));
    }

    #[test]
    fn join_with_pushdown() {
        let p = lower_sql(
            "SELECT t.user_id FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
             WHERE t.followers > 10 AND f.likes > 2 AND t.user_id + f.venue_id > 0",
        );
        // Each branch gets a pushed filter; the mixed conjunct stays above.
        let filters = p
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Filter { .. }))
            .count();
        assert_eq!(filters, 3);
        let joins = p
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Join { .. }))
            .count();
        assert_eq!(joins, 1);
        assert_eq!(p.base_logs(), vec!["foursquare", "twitter"]);
    }

    #[test]
    fn join_requires_equality() {
        let q = parse("SELECT t.user_id FROM twitter t JOIN foursquare f ON t.followers > f.likes")
            .unwrap();
        assert!(lower(&q, &catalog()).is_err());
    }

    #[test]
    fn aggregation_pipeline() {
        let p = lower_sql(
            "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS s \
             FROM twitter t GROUP BY t.city HAVING COUNT(*) > 5 ORDER BY n DESC LIMIT 3",
        );
        assert_eq!(p.schema().names(), vec!["city", "n", "s"]);
        let kinds: Vec<&str> = p
            .nodes()
            .iter()
            .map(|n| match n.op {
                Operator::ScanLog { .. } => "scan",
                Operator::Project { .. } => "proj",
                Operator::Filter { .. } => "filter",
                Operator::Aggregate { .. } => "agg",
                Operator::Sort { .. } => "sort",
                Operator::Limit { .. } => "limit",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["scan", "proj", "proj", "agg", "filter", "proj", "sort", "limit"]
        );
    }

    #[test]
    fn count_distinct_lowering() {
        let p = lower_sql("SELECT COUNT(DISTINCT t.user_id) AS users FROM twitter t");
        let agg = p
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                Operator::Aggregate { aggs, .. } => Some(aggs.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(agg[0].func, AggFunc::CountDistinct);
        assert_eq!(p.schema().names(), vec!["users"]);
    }

    #[test]
    fn arithmetic_over_aggregates() {
        let p = lower_sql("SELECT SUM(t.retweets) / COUNT(*) AS ratio FROM twitter t");
        assert_eq!(p.schema().names(), vec!["ratio"]);
        // Two distinct aggregates discovered.
        let agg = p
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                Operator::Aggregate { aggs, .. } => Some(aggs.len()),
                _ => None,
            })
            .unwrap();
        assert_eq!(agg, 2);
    }

    #[test]
    fn derived_table() {
        let p = lower_sql(
            "SELECT d.uid FROM (SELECT t.user_id AS uid FROM twitter t WHERE t.followers > 5) d",
        );
        assert_eq!(p.schema().names(), vec!["uid"]);
    }

    #[test]
    fn apply_udf_over_base_scans_raw() {
        let p = lower_sql("SELECT x.score FROM APPLY(sentiment_extract, twitter) x");
        assert!(p.has_udf());
        // scan -> udf -> project: the UDF consumes raw records (no SerDe
        // projection below it).
        let kinds: Vec<bool> = p
            .nodes()
            .iter()
            .map(|n| matches!(n.op, Operator::Udf { .. }))
            .collect();
        assert_eq!(kinds.iter().filter(|&&b| b).count(), 1);
        assert_eq!(p.node(NodeId(1)).inputs, vec![NodeId(0)]);
        assert!(matches!(p.node(NodeId(0)).op, Operator::ScanLog { .. }));
    }

    #[test]
    fn unqualified_columns_single_table() {
        let p = lower_sql("SELECT city FROM twitter t WHERE followers > 10");
        assert_eq!(p.schema().names(), vec!["city"]);
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        assert!(lower(&parse("SELECT t.x FROM nope t").unwrap(), &c).is_err());
        assert!(lower(&parse("SELECT q.x FROM twitter t").unwrap(), &c).is_err());
        assert!(lower(
            &parse("SELECT x.s FROM APPLY(missing_udf, twitter) x").unwrap(),
            &c
        )
        .is_err());
    }

    #[test]
    fn group_by_non_selected_field_errors_in_select() {
        // selecting a non-grouped field under aggregation is an error
        let q = parse("SELECT t.city, COUNT(*) FROM twitter t GROUP BY t.lang").unwrap();
        assert!(lower(&q, &catalog()).is_err());
    }

    #[test]
    fn order_by_unknown_column_errors() {
        let q = parse("SELECT t.city FROM twitter t ORDER BY nope").unwrap();
        assert!(lower(&q, &catalog()).is_err());
    }

    #[test]
    fn like_becomes_contains() {
        let p = lower_sql("SELECT t.text FROM twitter t WHERE t.text LIKE '%gem%'");
        let has_contains = p.nodes().iter().any(|n| match &n.op {
            Operator::Filter { predicate } => {
                let mut found = false;
                predicate.visit(&mut |e| {
                    if let Expr::Func { name, args } = e {
                        if name == "contains" {
                            if let Expr::Literal(miso_data::Value::Str(s)) = &args[1] {
                                found = s == "gem";
                            }
                        }
                    }
                });
                found
            }
            _ => false,
        });
        assert!(has_contains);
    }
}
