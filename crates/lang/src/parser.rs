//! Recursive-descent parser for the HiveQL subset.
//!
//! Precedence (low→high): `OR` < `AND` < `NOT` < comparison/`LIKE`/`IS NULL`
//! < additive < multiplicative < unary minus < primary.

use crate::ast::*;
use crate::lexer::{lex, Keyword, Token};
use miso_common::{MisoError, Result};
use miso_data::DataType;

/// Parses one SELECT query; trailing tokens are an error.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> MisoError {
        MisoError::Parse(format!("{msg}, found {}", self.peek()))
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if *self.peek() == Token::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw:?}")))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {t}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.error("expected end of query"))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(MisoError::Parse(format!(
                "expected identifier, found {other}"
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_kw(Keyword::Select)?;
        let select = self.parse_select_list()?;
        self.expect_kw(Keyword::From)?;
        let from = self.parse_from()?;
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(MisoError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.eat_kw(Keyword::As) {
                Some(self.expect_ident()?)
            } else if let Token::Ident(_) = self.peek() {
                // bare alias: `expr alias`
                Some(self.expect_ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        let first = self.parse_table_ref()?;
        let mut joins = Vec::new();
        while self.eat_kw(Keyword::Join) {
            let table = self.parse_table_ref()?;
            self.expect_kw(Keyword::On)?;
            let on = self.parse_expr()?;
            joins.push(JoinItem { table, on });
        }
        Ok(FromClause { first, joins })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            let query = self.parse_query()?;
            self.expect(&Token::RParen)?;
            let alias = self.parse_alias(true, "derived table")?;
            Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            })
        } else if self.eat_kw(Keyword::Apply) {
            self.expect(&Token::LParen)?;
            let udf = self.expect_ident()?;
            self.expect(&Token::Comma)?;
            let input = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            let alias = self.parse_alias(true, "APPLY")?;
            Ok(TableRef::Apply {
                udf,
                input: Box::new(input),
                alias,
            })
        } else {
            let name = self.expect_ident()?;
            let alias = self.parse_alias(false, "table")?;
            let alias = if alias.is_empty() {
                name.clone()
            } else {
                alias
            };
            Ok(TableRef::Base { name, alias })
        }
    }

    /// Parses an optional `AS alias` or bare-identifier alias. If `required`
    /// and missing, errors. Returns `""` when optional and absent.
    fn parse_alias(&mut self, required: bool, what: &str) -> Result<String> {
        if self.eat_kw(Keyword::As) {
            return self.expect_ident();
        }
        if let Token::Ident(_) = self.peek() {
            return self.expect_ident();
        }
        if required {
            Err(self.error(&format!("{what} requires an alias")))
        } else {
            Ok(String::new())
        }
    }

    // ---- expressions ----

    fn parse_expr(&mut self) -> Result<SqlExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = SqlExpr::Binary {
                op: SqlBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = SqlExpr::Binary {
                op: SqlBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlExpr> {
        if self.eat_kw(Keyword::Not) {
            Ok(SqlExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<SqlExpr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Token::Eq => Some(SqlBinOp::Eq),
            Token::Ne => Some(SqlBinOp::Ne),
            Token::Lt => Some(SqlBinOp::Lt),
            Token::Le => Some(SqlBinOp::Le),
            Token::Gt => Some(SqlBinOp::Gt),
            Token::Ge => Some(SqlBinOp::Ge),
            Token::Keyword(Keyword::Like) => Some(SqlBinOp::Like),
            Token::Keyword(Keyword::Is) => None,
            _ => return Ok(left),
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // IS [NOT] NULL
        self.expect_kw(Keyword::Is)?;
        let negated = self.eat_kw(Keyword::Not);
        self.expect_kw(Keyword::Null)?;
        Ok(SqlExpr::IsNull {
            expr: Box::new(left),
            negated,
        })
    }

    fn parse_additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => SqlBinOp::Add,
                Token::Minus => SqlBinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => SqlBinOp::Mul,
                Token::Slash => SqlBinOp::Div,
                Token::Percent => SqlBinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = SqlExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr> {
        if self.eat(&Token::Minus) {
            Ok(SqlExpr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<SqlExpr> {
        match self.bump() {
            Token::Int(i) => Ok(SqlExpr::Int(i)),
            Token::Float(f) => Ok(SqlExpr::Float(f)),
            Token::Str(s) => Ok(SqlExpr::Str(s)),
            Token::Keyword(Keyword::True) => Ok(SqlExpr::Bool(true)),
            Token::Keyword(Keyword::False) => Ok(SqlExpr::Bool(false)),
            Token::Keyword(Keyword::Null) => Ok(SqlExpr::Null),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(Keyword::Cast) => {
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw(Keyword::As)?;
                let ty = match self.bump() {
                    Token::Keyword(Keyword::Int) => DataType::Int,
                    Token::Keyword(Keyword::Float) => DataType::Float,
                    Token::Keyword(Keyword::String) => DataType::Str,
                    Token::Keyword(Keyword::Bool) => DataType::Bool,
                    other => {
                        return Err(MisoError::Parse(format!(
                            "expected a type name in CAST, found {other}"
                        )))
                    }
                };
                self.expect(&Token::RParen)?;
                Ok(SqlExpr::Cast {
                    expr: Box::new(e),
                    ty,
                })
            }
            Token::Ident(name) => {
                if self.eat(&Token::Dot) {
                    // qualified column: alias.field (or alias.*, unsupported)
                    let field = self.expect_ident()?;
                    Ok(SqlExpr::Column {
                        qualifier: Some(name),
                        name: field,
                    })
                } else if self.eat(&Token::LParen) {
                    self.parse_call(name.to_lowercase())
                } else {
                    Ok(SqlExpr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(MisoError::Parse(format!(
                "expected an expression, found {other}"
            ))),
        }
    }

    fn parse_call(&mut self, name: String) -> Result<SqlExpr> {
        // COUNT(*), COUNT(DISTINCT x), f(a, b, ...)
        if self.eat(&Token::Star) {
            self.expect(&Token::RParen)?;
            return Ok(SqlExpr::Call {
                name,
                distinct: false,
                star: true,
                args: vec![],
            });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut args = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    self.expect(&Token::RParen)?;
                    break;
                }
            }
        }
        Ok(SqlExpr::Call {
            name,
            distinct,
            star: false,
            args,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let q = parse("SELECT t.city FROM twitter t").unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from.first.alias(), "t");
        assert!(q.where_clause.is_none());
        assert!(q.group_by.is_empty());
        assert!(q.limit.is_none());
    }

    #[test]
    fn parses_full_query() {
        let q = parse(
            "SELECT t.user_id AS uid, COUNT(*) AS n \
             FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
             WHERE t.followers > 100 AND array_contains(t.hashtags, 'pizza') \
             GROUP BY t.user_id HAVING COUNT(*) > 2 \
             ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[0].alias.as_deref(), Some("uid"));
        assert_eq!(q.from.joins.len(), 1);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn operator_precedence() {
        let q = parse("SELECT a + b * c FROM t x WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        // a + (b * c)
        match &q.select[0].expr {
            SqlExpr::Binary {
                op: SqlBinOp::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    SqlExpr::Binary {
                        op: SqlBinOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        // a=1 OR (b=2 AND c=3)
        match q.where_clause.as_ref().unwrap() {
            SqlExpr::Binary {
                op: SqlBinOp::Or,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    SqlExpr::Binary {
                        op: SqlBinOp::And,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn derived_table_and_apply() {
        let q = parse("SELECT d.uid FROM (SELECT t.user_id AS uid FROM twitter t) d").unwrap();
        assert!(matches!(q.from.first, TableRef::Derived { .. }));
        let q2 = parse("SELECT x.s FROM APPLY(sentiment, twitter) x").unwrap();
        match &q2.from.first {
            TableRef::Apply { udf, input, alias } => {
                assert_eq!(udf, "sentiment");
                assert_eq!(alias, "x");
                assert!(matches!(**input, TableRef::Base { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_apply() {
        let q = parse("SELECT x.s FROM APPLY(outer_udf, APPLY(inner_udf, twitter) y) x").unwrap();
        match &q.from.first {
            TableRef::Apply { input, .. } => {
                assert!(matches!(**input, TableRef::Apply { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_variants() {
        let q = parse("SELECT COUNT(*), COUNT(DISTINCT t.uid), SUM(t.x) FROM t t").unwrap();
        match &q.select[0].expr {
            SqlExpr::Call { star, .. } => assert!(star),
            other => panic!("unexpected {other:?}"),
        }
        match &q.select[1].expr {
            SqlExpr::Call { distinct, args, .. } => {
                assert!(distinct);
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn is_null_and_not() {
        let q = parse("SELECT a FROM t t WHERE a IS NOT NULL AND NOT b = 1").unwrap();
        let w = q.where_clause.unwrap();
        match w {
            SqlExpr::Binary {
                op: SqlBinOp::And,
                left,
                right,
            } => {
                assert!(matches!(*left, SqlExpr::IsNull { negated: true, .. }));
                assert!(matches!(*right, SqlExpr::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_expression() {
        let q = parse("SELECT CAST(t.x AS INT) FROM t t").unwrap();
        assert!(matches!(
            q.select[0].expr,
            SqlExpr::Cast {
                ty: DataType::Int,
                ..
            }
        ));
    }

    #[test]
    fn rejects_trailing_tokens_and_bad_syntax() {
        assert!(parse("SELECT a FROM t t extra junk()").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a").is_err());
        assert!(
            parse("SELECT a FROM (SELECT b FROM t t)").is_err(),
            "derived needs alias"
        );
        assert!(parse("SELECT a FROM t t LIMIT x").is_err());
    }

    #[test]
    fn like_operator() {
        let q = parse("SELECT a FROM t t WHERE t.name LIKE 'foo'").unwrap();
        assert!(matches!(
            q.where_clause.unwrap(),
            SqlExpr::Binary {
                op: SqlBinOp::Like,
                ..
            }
        ));
    }
}
