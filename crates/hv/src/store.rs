//! The HV store: HDFS-like log storage, view storage, staged execution.

use crate::cost::HvCostModel;
use crate::stages::{compile_stages, Stage};
use miso_common::guard::QueryGuard;
use miso_common::ids::NodeId;
use miso_common::{ByteSize, MisoError, Result, SimDuration};
use miso_data::checksum::{checksum_rows, corrupt_first_row, Checksum};
use miso_data::logs::LogFile;
use miso_data::{Row, Schema};
use miso_exec::engine::{execute_subset_guarded, DataSource, ExecOptions, Execution};
use miso_exec::UdfRegistry;
use miso_plan::estimate::MapStats;
use miso_plan::{LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A view's contents as stored in HV.
#[derive(Debug, Clone)]
struct StoredView {
    schema: Schema,
    rows: Arc<Vec<Row>>,
    size: ByteSize,
    /// Content checksum recorded when the view was installed. Deliberately
    /// *not* updated by [`HvStore::corrupt_view`]: it is the install-time
    /// truth that verification compares the bytes against.
    checksum: Checksum,
}

/// One stage output captured during execution — an opportunistic view
/// candidate.
#[derive(Debug, Clone)]
pub struct MaterializedOutput {
    /// The plan node whose output this is.
    pub node: NodeId,
    /// The materialized rows.
    pub rows: Arc<Vec<Row>>,
    /// The rows' schema.
    pub schema: Schema,
    /// Serialized size.
    pub size: ByteSize,
}

/// The result of executing (part of) a plan in HV.
#[derive(Debug)]
pub struct HvRun {
    /// Row-level results for every executed node.
    pub execution: Execution,
    /// Total simulated cost (sum of stage costs).
    pub cost: SimDuration,
    /// Per-stage costs, in execution order.
    pub stage_costs: Vec<SimDuration>,
    /// Stage outputs (opportunistic view candidates), in execution order.
    pub materialized: Vec<MaterializedOutput>,
}

/// The simulated Hive/Hadoop store.
///
/// `Clone` is deliberate: the serving layer snapshots the whole store into an
/// immutable epoch image, so reorganization can stage changes off to the side
/// and publish atomically. Row payloads are `Arc`-shared, so a clone is cheap
/// relative to the data it references.
#[derive(Debug, Default, Clone)]
pub struct HvStore {
    logs: HashMap<String, LogFile>,
    views: HashMap<String, StoredView>,
    /// Cost model (public so experiments can recalibrate).
    pub cost_model: HvCostModel,
}

impl HvStore {
    /// An empty store with the default cost model.
    pub fn new() -> Self {
        HvStore {
            logs: HashMap::new(),
            views: HashMap::new(),
            cost_model: HvCostModel::default(),
        }
    }

    /// Registers a base log.
    pub fn add_log(&mut self, log: LogFile) {
        self.logs.insert(log.kind.table_name().to_string(), log);
    }

    /// Appends lines to a base log (HDFS-style append-only growth),
    /// returning the appended byte count.
    pub fn append_log(&mut self, name: &str, lines: Vec<String>) -> Result<ByteSize> {
        let log = self
            .logs
            .get_mut(name)
            .ok_or_else(|| MisoError::Store(format!("HV has no log `{name}`")))?;
        let added: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
        log.lines.extend(lines);
        log.size += ByteSize::from_bytes(added);
        Ok(ByteSize::from_bytes(added))
    }

    /// The on-disk size of a base log.
    pub fn log_size(&self, name: &str) -> Option<ByteSize> {
        self.logs.get(name).map(|l| l.size)
    }

    /// Total size of all base logs.
    pub fn total_log_bytes(&self) -> ByteSize {
        self.logs.values().map(|l| l.size).sum()
    }

    /// Installs (or replaces) a materialized view, recording its content
    /// checksum (part of the write cost, like any storage-level CRC).
    pub fn install_view(&mut self, name: &str, schema: Schema, rows: Arc<Vec<Row>>) -> ByteSize {
        let size = ByteSize::from_bytes(rows.iter().map(Row::approx_bytes).sum());
        let checksum = checksum_rows(&rows);
        self.views.insert(
            name.to_string(),
            StoredView {
                schema,
                rows,
                size,
                checksum,
            },
        );
        size
    }

    /// Installs a view whose size and content checksum the caller computed
    /// incrementally (the IVM maintenance path). Trusting the provided
    /// metadata keeps a delta apply O(|delta|): nothing here re-scans the
    /// rows. The caller is responsible for `checksum` being the exact
    /// [`checksum_rows`] value of `rows` — the incremental
    /// [`miso_data::RowSetDigest`] guarantees that by construction.
    pub fn install_view_with_checksum(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Arc<Vec<Row>>,
        size: ByteSize,
        checksum: Checksum,
    ) {
        self.views.insert(
            name.to_string(),
            StoredView {
                schema,
                rows,
                size,
                checksum,
            },
        );
    }

    /// Removes a view, returning its size if it existed.
    pub fn remove_view(&mut self, name: &str) -> Option<ByteSize> {
        self.views.remove(name).map(|v| v.size)
    }

    /// Removes a view and returns its full contents (schema, rows, size).
    /// The maintenance layer uses this to take sole ownership of the row
    /// `Arc` before a delta apply, so extending the rows is a cheap
    /// in-place `Arc::make_mut` instead of a deep clone.
    pub fn take_view(&mut self, name: &str) -> Option<(Schema, Arc<Vec<Row>>, ByteSize)> {
        self.views.remove(name).map(|v| (v.schema, v.rows, v.size))
    }

    /// Whether a view is present.
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(name)
    }

    /// A view's stored size.
    pub fn view_size(&self, name: &str) -> Option<ByteSize> {
        self.views.get(name).map(|v| v.size)
    }

    /// A view's stored rows (for migrating it to the other store).
    pub fn view_rows(&self, name: &str) -> Option<Arc<Vec<Row>>> {
        self.views.get(name).map(|v| v.rows.clone())
    }

    /// A view's schema.
    pub fn view_schema(&self, name: &str) -> Option<&Schema> {
        self.views.get(name).map(|v| &v.schema)
    }

    /// A view's rows as a slice (store-level error when absent).
    pub fn view_rows_slice(&self, name: &str) -> Result<&[Row]> {
        self.views
            .get(name)
            .map(|v| v.rows.as_slice())
            .ok_or_else(|| MisoError::Store(format!("HV has no view `{name}`")))
    }

    /// A view's install-time content checksum.
    pub fn view_checksum(&self, name: &str) -> Option<Checksum> {
        self.views.get(name).map(|v| v.checksum)
    }

    /// Recomputes the stored rows' checksum and compares it to `expected`.
    /// `None` when the view is absent. This reads every row — callers
    /// charge scrub/verify cost accordingly.
    pub fn verify_view(&self, name: &str, expected: Checksum) -> Option<bool> {
        self.views
            .get(name)
            .map(|v| checksum_rows(&v.rows) == expected)
    }

    /// Silently flips a value in the view's first row (chaos corruption).
    /// The recorded install-time checksum is left untouched — that is the
    /// point: only re-verification can notice. Returns whether anything
    /// changed (empty or absent views cannot be corrupted).
    pub fn corrupt_view(&mut self, name: &str) -> bool {
        let Some(view) = self.views.get_mut(name) else {
            return false;
        };
        corrupt_first_row(&mut view.rows)
    }

    /// Total bytes of stored views.
    pub fn total_view_bytes(&self) -> ByteSize {
        self.views.values().map(|v| v.size).sum()
    }

    /// Names of stored views (sorted).
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.views.keys().cloned().collect();
        names.sort();
        names
    }

    /// Registers true log/view sizes into an estimation stats source.
    pub fn fill_stats(&self, stats: &mut MapStats) {
        for (name, log) in &self.logs {
            stats.set_log(name.clone(), log.len() as f64, log.size.as_bytes() as f64);
        }
        for (name, view) in &self.views {
            stats.set_view(
                name.clone(),
                view.rows.len() as f64,
                view.size.as_bytes() as f64,
            );
        }
    }

    /// Executes `subset` of `plan` (all nodes when `None`), charging staged
    /// MapReduce costs and capturing each stage output as an opportunistic
    /// view candidate.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<NodeId>>,
        udfs: &UdfRegistry,
    ) -> Result<HvRun> {
        self.execute_guarded(plan, subset, udfs, QueryGuard::inert_ref())
    }

    /// [`HvStore::execute`] under a [`QueryGuard`]: the engine checks the
    /// guard at every morsel-dispatch boundary and charges materializations
    /// against its memory budget. An injected `stall` inflates the charged
    /// cost so far past any sane deadline that the driver's next deadline
    /// check kills the query; an injected `hog` inflates the query's charged
    /// bytes by its factor (a no-op under an inactive guard).
    pub fn execute_guarded(
        &self,
        plan: &LogicalPlan,
        subset: Option<&HashSet<NodeId>>,
        udfs: &UdfRegistry,
        guard: &QueryGuard,
    ) -> Result<HvRun> {
        let mut obs = miso_obs::span("hv.execute");
        // Fault injection: one relaxed atomic load when chaos is disabled.
        let mut chaos_slow = 1.0f64;
        let mut hog_factor = 1.0f64;
        match miso_chaos::hit("hv.execute") {
            miso_chaos::Action::Proceed => {}
            miso_chaos::Action::Fail => {
                return Err(MisoError::transient("hv", "injected HV job failure"));
            }
            miso_chaos::Action::Crash => return Err(MisoError::crash("hv", "hv.execute")),
            miso_chaos::Action::Delay(f) => chaos_slow = f,
            miso_chaos::Action::Stall => chaos_slow = miso_chaos::STALL_FACTOR,
            miso_chaos::Action::Hog(f) => hog_factor = f,
            // Corruption targets stored copies (view_read points), not
            // execution: a corrupt action here is a no-op.
            miso_chaos::Action::Corrupt => {}
        }
        // Validate scans up-front for a clean store-level error.
        for node in plan.nodes() {
            let in_subset = subset.is_none_or(|s| s.contains(&node.id));
            if !in_subset {
                continue;
            }
            match &node.op {
                Operator::ScanLog { log } if !self.logs.contains_key(log) => {
                    return Err(MisoError::Store(format!("HV has no log `{log}`")));
                }
                Operator::ScanView { view, .. } if !self.views.contains_key(view) => {
                    return Err(MisoError::Store(format!("HV has no view `{view}`")));
                }
                _ => {}
            }
        }
        let stages = compile_stages(plan, subset, &HashSet::new());
        // Full retention is load-bearing here: every stage boundary below is
        // both charged by size and harvested as an opportunistic view, so HV
        // must keep all node outputs (never `retain_root_only`).
        let execution = execute_subset_guarded(
            plan,
            subset,
            HashMap::new(),
            self,
            udfs,
            ExecOptions {
                retain_root_only: false,
                ..ExecOptions::default()
            },
            guard,
        )?;
        let mut cost = SimDuration::ZERO;
        let mut stage_costs = Vec::with_capacity(stages.len());
        let mut materialized = Vec::with_capacity(stages.len());
        let mut stage_outputs: HashSet<NodeId> = HashSet::new();
        for stage in &stages {
            let mut c = self.charge_stage(plan, stage, &execution)?;
            if chaos_slow != 1.0 {
                // Injected straggler: every stage runs slower by the factor.
                c = c * chaos_slow;
            }
            stage_costs.push(c);
            cost += c;
            let node = plan.node(stage.output);
            stage_outputs.insert(stage.output);
            materialized.push(MaterializedOutput {
                node: stage.output,
                rows: execution.output(stage.output).clone(),
                schema: node.schema.clone(),
                size: execution.output_bytes(stage.output),
            });
        }
        // Map-phase by-products: a Filter's output is the map output spilled
        // for the shuffle of its consuming job — Hadoop materializes these
        // too, and [15] harvests them alongside job outputs.
        for node in plan.nodes() {
            let in_subset = subset.is_none_or(|s| s.contains(&node.id));
            if !in_subset
                || stage_outputs.contains(&node.id)
                || !matches!(node.op, Operator::Filter { .. })
            {
                continue;
            }
            if let Some(rows) = execution.try_output(node.id) {
                materialized.push(MaterializedOutput {
                    node: node.id,
                    rows: rows.clone(),
                    schema: node.schema.clone(),
                    size: execution.output_bytes(node.id),
                });
            }
        }
        if hog_factor > 1.0 && guard.is_active() {
            // Injected memory hog: transiently charge (factor - 1)× the
            // materialized bytes, as if the query ballooned. Over-budget
            // queries die here with `ResourceExhausted`; surviving hogs
            // still move the peak gauge before releasing.
            let real: u64 = materialized.iter().map(|m| m.size.as_bytes()).sum();
            let extra = ((hog_factor - 1.0) * real as f64) as u64;
            guard.try_charge(extra)?;
            guard.release(extra);
        }
        if obs.is_active() {
            let bytes: u64 = materialized.iter().map(|m| m.size.as_bytes()).sum();
            obs.push_field("stages", miso_obs::FieldValue::U64(stages.len() as u64));
            obs.push_field("cost_us", miso_obs::FieldValue::U64(cost.as_micros()));
            obs.push_field(
                "materialized",
                miso_obs::FieldValue::U64(materialized.len() as u64),
            );
            obs.push_field("materialized_bytes", miso_obs::FieldValue::U64(bytes));
            miso_obs::count("hv.stages_run", stages.len() as u64);
            miso_obs::count("hv.bytes_materialized", bytes);
        }
        Ok(HvRun {
            execution,
            cost,
            stage_costs,
            materialized,
        })
    }

    /// Stage cost: leaf reads (log file bytes / view bytes) + upstream stage
    /// output reads + per-row processing + materialized output write.
    fn charge_stage(
        &self,
        plan: &LogicalPlan,
        stage: &Stage,
        exec: &Execution,
    ) -> Result<SimDuration> {
        let mut bytes_in = ByteSize::ZERO;
        let mut rows_processed = 0u64;
        for &id in &stage.nodes {
            match &plan.node(id).op {
                Operator::ScanLog { log } => {
                    let f = self
                        .logs
                        .get(log)
                        .ok_or_else(|| MisoError::Store(format!("HV has no log `{log}`")))?;
                    bytes_in += f.size;
                }
                Operator::ScanView { view, .. } => {
                    let v = self
                        .views
                        .get(view)
                        .ok_or_else(|| MisoError::Store(format!("HV has no view `{view}`")))?;
                    bytes_in += v.size;
                }
                _ => {}
            }
            rows_processed += exec
                .try_output(id)
                .map(|rows| rows.len() as u64)
                .unwrap_or(0);
        }
        for &up in &stage.upstream {
            bytes_in += exec.output_bytes(up);
        }
        let bytes_out = exec.output_bytes(stage.output);
        Ok(self
            .cost_model
            .stage_cost(bytes_in, bytes_out, rows_processed))
    }

    /// Cost of dumping a working set for transfer to DW.
    pub fn dump_cost(&self, bytes: ByteSize) -> SimDuration {
        self.cost_model.dump_cost(bytes)
    }
}

impl DataSource for HvStore {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        self.logs
            .get(log)
            .map(|l| l.lines.as_slice())
            .ok_or_else(|| MisoError::Store(format!("HV has no log `{log}`")))
    }

    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.views
            .get(view)
            .map(|v| v.rows.as_slice())
            .ok_or_else(|| MisoError::Store(format!("HV has no view `{view}`")))
    }

    fn view_rows_shared(&self, view: &str) -> Option<Arc<Vec<Row>>> {
        self.views.get(view).map(|v| v.rows.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::logs::{Corpus, LogsConfig};
    use miso_lang::{compile, Catalog};

    fn store() -> HvStore {
        let corpus = Corpus::generate(&LogsConfig::tiny());
        let mut s = HvStore::new();
        s.add_log(corpus.twitter);
        s.add_log(corpus.foursquare);
        s.add_log(corpus.landmarks);
        s
    }

    fn plan(sql: &str) -> LogicalPlan {
        compile(sql, &Catalog::standard()).unwrap()
    }

    #[test]
    fn execute_simple_aggregate() {
        let s = store();
        let p = plan("SELECT t.city AS city, COUNT(*) AS n FROM twitter t GROUP BY t.city");
        let run = s.execute(&p, None, &UdfRegistry::new()).unwrap();
        let rows = run.execution.root_rows().unwrap();
        assert!(!rows.is_empty());
        assert!(run.cost > SimDuration::ZERO);
        // agg job + final projection job
        assert_eq!(run.stage_costs.len(), run.materialized.len());
        assert!(!run.materialized.is_empty());
    }

    #[test]
    fn missing_log_is_store_error() {
        let s = HvStore::new();
        let p = plan("SELECT t.city FROM twitter t");
        let err = s.execute(&p, None, &UdfRegistry::new()).unwrap_err();
        assert!(matches!(err, MisoError::Store(_)));
    }

    #[test]
    fn view_roundtrip_and_budget_accounting() {
        let mut s = store();
        let rows = Arc::new(vec![Row::new(vec![miso_data::Value::Int(1)])]);
        let schema = Schema::new(vec![miso_data::Field::new("x", miso_data::DataType::Int)]);
        let size = s.install_view("v_test", schema, rows);
        assert!(size.as_bytes() > 0);
        assert!(s.has_view("v_test"));
        assert_eq!(s.view_size("v_test"), Some(size));
        assert_eq!(s.total_view_bytes(), size);
        assert_eq!(s.remove_view("v_test"), Some(size));
        assert!(!s.has_view("v_test"));
        assert_eq!(s.total_view_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn checksum_recorded_and_corruption_detected() {
        let mut s = store();
        let rows = Arc::new(vec![Row::new(vec![miso_data::Value::Int(1)])]);
        let schema = Schema::new(vec![miso_data::Field::new("x", miso_data::DataType::Int)]);
        s.install_view("v_test", schema, rows);
        let recorded = s.view_checksum("v_test").unwrap();
        assert_eq!(s.verify_view("v_test", recorded), Some(true));
        assert!(s.corrupt_view("v_test"));
        assert_eq!(
            s.view_checksum("v_test"),
            Some(recorded),
            "corruption is silent: the recorded checksum must not move"
        );
        assert_eq!(s.verify_view("v_test", recorded), Some(false));
        assert_eq!(s.verify_view("v_missing", recorded), None);
        assert!(!s.corrupt_view("v_missing"));
    }

    #[test]
    fn scan_from_installed_view() {
        let mut s = store();
        // Materialize a sub-result, install it, and scan it back.
        let p = plan("SELECT t.city AS city, COUNT(*) AS n FROM twitter t GROUP BY t.city");
        let run = s.execute(&p, None, &UdfRegistry::new()).unwrap();
        let m = &run.materialized[0];
        s.install_view("v_agg", m.schema.clone(), m.rows.clone());

        let mut b = miso_plan::PlanBuilder::new();
        let sv = b
            .add(
                Operator::ScanView {
                    view: "v_agg".into(),
                    schema: m.schema.clone(),
                },
                vec![],
            )
            .unwrap();
        let p2 = b.finish(sv).unwrap();
        let run2 = s.execute(&p2, None, &UdfRegistry::new()).unwrap();
        assert_eq!(run2.execution.root_rows().unwrap().len(), m.rows.len());
        // Scanning a small view is far cheaper than scanning the base log.
        assert!(run2.cost < run.cost);
    }

    #[test]
    fn costs_scale_with_log_size() {
        let s = store();
        let small = plan("SELECT l.city FROM landmarks l");
        let big = plan("SELECT t.city FROM twitter t");
        let c_small = s.execute(&small, None, &UdfRegistry::new()).unwrap().cost;
        let c_big = s.execute(&big, None, &UdfRegistry::new()).unwrap().cost;
        assert!(c_big > c_small);
    }

    #[test]
    fn fill_stats_registers_logs_and_views() {
        let mut s = store();
        let rows = Arc::new(vec![Row::new(vec![miso_data::Value::Int(1)])]);
        let schema = Schema::new(vec![miso_data::Field::new("x", miso_data::DataType::Int)]);
        s.install_view("v_x", schema, rows);
        let mut stats = MapStats::new();
        s.fill_stats(&mut stats);
        use miso_plan::estimate::StatsSource;
        assert!(stats.log_stats("twitter").unwrap().rows > 0.0);
        assert_eq!(stats.view_stats("v_x").unwrap().rows, 1.0);
    }

    #[test]
    fn partial_execution_materializes_cut() {
        let s = store();
        let p = plan(
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
             WHERE t.followers > 100 GROUP BY t.city",
        );
        // Execute only the scan+extract+filter prefix (find it structurally:
        // everything below the pre-agg projection).
        let agg_node = p
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Aggregate { .. }))
            .unwrap()
            .id;
        let mut subset: HashSet<NodeId> = p.descendants(agg_node);
        subset.remove(&agg_node);
        // remove the pre-agg projection too, keeping scan/extract/filter
        let pre_agg = p.node(agg_node).inputs[0];
        subset.remove(&pre_agg);
        let run = s.execute(&p, Some(&subset), &UdfRegistry::new()).unwrap();
        assert_eq!(run.materialized.len(), 1, "cut output is materialized");
        assert!(run.execution.try_output(agg_node).is_none());
    }
}
