//! The HV cost model.
//!
//! Charges simulated time for MapReduce-style stage execution, following the
//! structure of the MRShare-style model the paper cites (\[16\]): per-job
//! startup latency plus read, CPU, and write terms. Rates are *effective
//! cluster rates* (per-node bandwidth × nodes ÷ replication and shuffle
//! overheads), expressed per **actual** byte of our scaled-down synthetic
//! data, calibrated so that end-to-end magnitudes land at paper scale
//! (HV-only queries in the 10³–10⁴ simulated-second range against MB-scale
//! inputs standing in for the paper's TBs).

use miso_common::{ByteSize, SimDuration};

/// Cost parameters for the HV cluster.
#[derive(Debug, Clone)]
pub struct HvCostModel {
    /// Cluster width (the paper's HV cluster has 15 nodes).
    pub nodes: u32,
    /// Fixed startup latency per MapReduce job (JVM spin-up, scheduling).
    pub job_startup: SimDuration,
    /// Seconds per input byte read (scan + shuffle), effective across the
    /// cluster.
    pub read_secs_per_byte: f64,
    /// Seconds per output byte written (HDFS materialization is replicated,
    /// so writes cost more than reads).
    pub write_secs_per_byte: f64,
    /// Seconds per row of operator processing (SerDe, predicate eval, ...).
    pub cpu_secs_per_row: f64,
    /// Seconds per byte dumped out of HDFS to the staging disk (single
    /// unreplicated pass, sequential).
    pub dump_secs_per_byte: f64,
}

impl Default for HvCostModel {
    fn default() -> Self {
        HvCostModel::paper_default()
    }
}

impl HvCostModel {
    /// Calibrated to reproduce the paper's magnitudes against the standard
    /// synthetic corpus (see `DESIGN.md` §5).
    pub fn paper_default() -> Self {
        HvCostModel {
            nodes: 15,
            job_startup: SimDuration::from_secs(150),
            read_secs_per_byte: 2.2e-4,
            write_secs_per_byte: 3.3e-4,
            cpu_secs_per_row: 2.5e-3,
            dump_secs_per_byte: 0.5e-4,
        }
    }

    /// Cost of one stage (one MR job).
    pub fn stage_cost(
        &self,
        bytes_in: ByteSize,
        bytes_out: ByteSize,
        rows_processed: u64,
    ) -> SimDuration {
        let io = bytes_in.as_bytes() as f64 * self.read_secs_per_byte
            + bytes_out.as_bytes() as f64 * self.write_secs_per_byte;
        let cpu = rows_processed as f64 * self.cpu_secs_per_row;
        self.job_startup + SimDuration::from_secs_f64(io + cpu)
    }

    /// Cost of dumping a working set out of HDFS to the staging disk (the
    /// green "DUMP" component of the paper's Figure 3).
    pub fn dump_cost(&self, bytes: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 * self.dump_secs_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_cost_includes_startup_floor() {
        let m = HvCostModel::paper_default();
        let empty = m.stage_cost(ByteSize::ZERO, ByteSize::ZERO, 0);
        assert_eq!(empty, m.job_startup);
    }

    #[test]
    fn cost_is_monotone_in_all_inputs() {
        let m = HvCostModel::paper_default();
        let base = m.stage_cost(ByteSize::from_mib(1), ByteSize::from_kib(100), 1000);
        assert!(m.stage_cost(ByteSize::from_mib(2), ByteSize::from_kib(100), 1000) > base);
        assert!(m.stage_cost(ByteSize::from_mib(1), ByteSize::from_kib(200), 1000) > base);
        assert!(m.stage_cost(ByteSize::from_mib(1), ByteSize::from_kib(100), 2000) > base);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let m = HvCostModel::paper_default();
        assert!(m.write_secs_per_byte > m.read_secs_per_byte);
    }

    #[test]
    fn magnitudes_are_paper_scale() {
        // A full scan stage over a 10 MiB stand-in for ~1 TB should land in
        // the thousands of simulated seconds.
        let m = HvCostModel::paper_default();
        let cost = m.stage_cost(ByteSize::from_mib(10), ByteSize::from_mib(1), 40_000);
        let secs = cost.as_secs_f64();
        assert!((1_000.0..20_000.0).contains(&secs), "got {secs}");
    }

    #[test]
    fn dump_cheaper_than_stage_write() {
        let m = HvCostModel::paper_default();
        let b = ByteSize::from_mib(5);
        assert!(m.dump_cost(b) < m.stage_cost(b, b, 0));
    }
}
