//! HV — the simulated Hive/Hadoop store.
//!
//! The paper's big-data store is Hive 0.7.1 over Hadoop on a 15-node
//! cluster. This crate reproduces the two properties MISO depends on:
//!
//! 1. **Materialization behaviour.** Hive compiles a query into a DAG of
//!    MapReduce jobs; every job writes its output to HDFS for fault
//!    tolerance. Those by-products are the *opportunistic views*. Our
//!    [`stages`] module performs the same compilation (map-side chains fuse;
//!    joins, aggregates, sorts, and UDF jobs end stages), and
//!    [`store::HvStore::execute`] captures each stage output.
//! 2. **Cost asymmetry.** HV pays a fixed job-startup latency per stage plus
//!    scan/shuffle/write I/O at modest effective bandwidth — fast enough to
//!    sift TBs, but orders of magnitude slower per byte than the DW. The
//!    [`cost`] module charges simulated time accordingly, scaled from our
//!    MB-scale synthetic data back up to paper magnitudes.
//!
//! The store also enforces the **HV view storage budget** at tuning time
//! only — between reorganizations new opportunistic views accumulate
//! (paper §3.1: views "are retained until the next time the MISO tuner is
//! invoked").

pub mod cost;
pub mod stages;
pub mod store;

pub use cost::HvCostModel;
pub use stages::{compile_stages, Stage};
pub use store::{HvRun, HvStore, MaterializedOutput};
