//! MapReduce stage compilation.
//!
//! Hive turns a logical plan into a DAG of MR jobs: map-side operators
//! (scan, SerDe projection, filter, limit) fuse into the job of their
//! downstream blocking operator; joins, aggregates, and sorts force a
//! shuffle and end a job; UDF transformers run as their own streaming job.
//! Every job's output lands in HDFS — these are the opportunistic view
//! candidates.
//!
//! A [`Stage`] here is one such job: the set of fused plan nodes, its
//! *output node* (whose rows get written), and its external inputs (base
//! logs, views, or upstream stage outputs).

use miso_common::ids::NodeId;
use miso_plan::{LogicalPlan, Operator};
use std::collections::{HashMap, HashSet};

/// One MapReduce-style job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Nodes fused into this job, in plan (topological) order.
    pub nodes: Vec<NodeId>,
    /// The node whose output this job materializes.
    pub output: NodeId,
    /// External inputs: upstream stage outputs this job reads (base-log and
    /// view scans are *inside* `nodes` and read storage directly).
    pub upstream: Vec<NodeId>,
}

/// Whether `op` forces a stage boundary (its output is materialized).
pub fn is_boundary(op: &Operator) -> bool {
    matches!(
        op,
        Operator::Join { .. }
            | Operator::Aggregate { .. }
            | Operator::Sort { .. }
            | Operator::Udf { .. }
    )
}

/// Compiles the sub-plan consisting of `subset` (default: all nodes) into
/// stages, in execution (topological) order.
///
/// The subset must be input-closed *within the plan* except where nodes'
/// outputs are provided externally — callers executing a DW-side remainder
/// pass only their nodes and list the working-set boundary via
/// `external_inputs`.
pub fn compile_stages(
    plan: &LogicalPlan,
    subset: Option<&HashSet<NodeId>>,
    external_inputs: &HashSet<NodeId>,
) -> Vec<Stage> {
    let in_subset = |id: NodeId| subset.is_none_or(|s| s.contains(&id));

    // A node's output is materialized if it is a boundary op, or it is the
    // last node of the executed subset feeding nothing inside the subset
    // (the sub-plan's result), or it feeds a node outside the subset (a cut).
    let mut consumers: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for node in plan.nodes() {
        for input in &node.inputs {
            consumers.entry(*input).or_default().push(node.id);
        }
    }
    let mut boundary: HashSet<NodeId> = HashSet::new();
    for node in plan.nodes() {
        if !in_subset(node.id) || external_inputs.contains(&node.id) {
            continue;
        }
        let cons = consumers.get(&node.id);
        let feeds_inside = cons
            .map(|c| c.iter().any(|x| in_subset(*x)))
            .unwrap_or(false);
        let feeds_outside = cons
            .map(|c| c.iter().any(|x| !in_subset(*x)))
            .unwrap_or(false);
        if is_boundary(&node.op) || !feeds_inside || feeds_outside {
            boundary.insert(node.id);
        }
    }

    // Build one stage per boundary node: walk up through inputs, stopping at
    // other boundary nodes and external inputs (both are this stage's
    // upstream reads).
    let mut stages = Vec::new();
    let mut ordered_boundaries: Vec<NodeId> = plan
        .nodes()
        .iter()
        .map(|n| n.id)
        .filter(|id| boundary.contains(id))
        .collect();
    ordered_boundaries.sort_by_key(|id| id.raw());
    for &b in &ordered_boundaries {
        let mut nodes = Vec::new();
        let mut upstream = Vec::new();
        let mut stack = vec![b];
        let mut seen = HashSet::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if id != b && (boundary.contains(&id) || external_inputs.contains(&id)) {
                upstream.push(id);
                continue;
            }
            if external_inputs.contains(&id) {
                upstream.push(id);
                continue;
            }
            nodes.push(id);
            stack.extend(plan.node(id).inputs.iter().copied());
        }
        nodes.sort_by_key(|id| id.raw());
        upstream.sort_by_key(|id| id.raw());
        upstream.dedup();
        stages.push(Stage {
            nodes,
            output: b,
            upstream,
        });
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use miso_data::DataType;
    use miso_plan::{AggExpr, AggFunc, Expr, PlanBuilder};

    fn proj(field: &str) -> Operator {
        Operator::Project {
            exprs: vec![(
                field.to_string(),
                Expr::col(0).get(field).cast(DataType::Int),
            )],
        }
    }

    /// scan → project → filter → aggregate → limit
    fn linear() -> LogicalPlan {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let p = b.add(proj("user_id"), vec![scan]).unwrap();
        let f = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![p],
            )
            .unwrap();
        let a = b
            .add(
                Operator::Aggregate {
                    group_by: vec![0],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![f],
            )
            .unwrap();
        let l = b.add(Operator::Limit { n: 10 }, vec![a]).unwrap();
        b.finish(l).unwrap()
    }

    #[test]
    fn map_side_chain_fuses_into_aggregate_job() {
        let p = linear();
        let stages = compile_stages(&p, None, &HashSet::new());
        // Stage 1: scan+proj+filter+agg (agg is boundary); stage 2: limit
        // (plan result).
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].output, NodeId(3));
        assert_eq!(
            stages[0].nodes,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert!(stages[0].upstream.is_empty());
        assert_eq!(stages[1].output, NodeId(4));
        assert_eq!(stages[1].nodes, vec![NodeId(4)]);
        assert_eq!(stages[1].upstream, vec![NodeId(3)]);
    }

    #[test]
    fn join_plan_three_jobs() {
        let mut b = PlanBuilder::new();
        let s1 = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        let p1 = b.add(proj("user_id"), vec![s1]).unwrap();
        let s2 = b
            .add(
                Operator::ScanLog {
                    log: "foursquare".into(),
                },
                vec![],
            )
            .unwrap();
        let p2 = b.add(proj("user_id"), vec![s2]).unwrap();
        let j = b
            .add(Operator::Join { on: vec![(0, 0)] }, vec![p1, p2])
            .unwrap();
        let a = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![j],
            )
            .unwrap();
        let plan = b.finish(a).unwrap();
        let stages = compile_stages(&plan, None, &HashSet::new());
        // join job (both scan chains fuse as map inputs), then agg job.
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].output, NodeId(4));
        assert_eq!(stages[0].nodes.len(), 5);
        assert_eq!(stages[1].upstream, vec![NodeId(4)]);
    }

    #[test]
    fn udf_is_its_own_job() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        let u = b
            .add(
                Operator::Udf {
                    name: "u".into(),
                    output: miso_data::Schema::new(vec![miso_data::Field::new("x", DataType::Int)]),
                },
                vec![scan],
            )
            .unwrap();
        let f = b
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).eq(Expr::lit(1i64)),
                },
                vec![u],
            )
            .unwrap();
        let plan = b.finish(f).unwrap();
        let stages = compile_stages(&plan, None, &HashSet::new());
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].output, NodeId(1), "UDF job");
        assert_eq!(stages[1].output, NodeId(2), "result job");
    }

    #[test]
    fn subset_compilation_marks_cut_as_output() {
        let p = linear();
        // HV side: scan+project+filter (cut feeds the DW-side aggregate).
        let subset: HashSet<NodeId> = [NodeId(0), NodeId(1), NodeId(2)].into_iter().collect();
        let stages = compile_stages(&p, Some(&subset), &HashSet::new());
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].output, NodeId(2), "cut node output materialized");
    }

    #[test]
    fn external_inputs_become_upstream() {
        let p = linear();
        // DW-style remainder: aggregate+limit with filter output provided.
        let subset: HashSet<NodeId> = [NodeId(3), NodeId(4)].into_iter().collect();
        let external: HashSet<NodeId> = [NodeId(2)].into_iter().collect();
        let stages = compile_stages(&p, Some(&subset), &external);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].upstream, vec![NodeId(2)]);
    }

    #[test]
    fn single_scan_project_is_one_job() {
        let mut b = PlanBuilder::new();
        let scan = b
            .add(Operator::ScanLog { log: "t".into() }, vec![])
            .unwrap();
        let pr = b.add(proj("x"), vec![scan]).unwrap();
        let plan = b.finish(pr).unwrap();
        let stages = compile_stages(&plan, None, &HashSet::new());
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].nodes, vec![NodeId(0), NodeId(1)]);
    }
}
