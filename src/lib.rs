//! # MISO — Souping Up Big Data Query Processing with a Multistore System
//!
//! A from-scratch Rust reproduction of LeFevre et al., SIGMOD 2014.
//!
//! This facade crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use miso::prelude::*;
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use miso_chaos as chaos;
pub use miso_common as common;
pub use miso_core as core;
pub use miso_data as data;
pub use miso_dw as dw;
pub use miso_exec as exec;
pub use miso_hv as hv;
pub use miso_lang as lang;
pub use miso_optimizer as optimizer;
pub use miso_plan as plan;
pub use miso_views as views;
pub use miso_workload as workload;
pub use miso_xray as xray;

/// One-stop imports for the common workflow: generate a corpus, compile
/// queries, drive a system variant, read its TTI breakdown.
pub mod prelude {
    pub use miso_common::{Budgets, ByteSize, MisoError, Result, SimClock, SimDuration};
    pub use miso_core::{
        ExperimentResult, MaintenancePolicy, MultistoreSystem, SystemConfig, Variant,
    };
    pub use miso_data::logs::{Corpus, LogKind, LogsConfig};
    pub use miso_lang::{compile, Catalog};
    pub use miso_plan::LogicalPlan;
    pub use miso_workload::{compile_workload, standard_udfs, workload_catalog};
}
