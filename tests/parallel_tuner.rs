//! Equivalence and invalidation tests for the miso-par what-if engine.
//!
//! The contract under test: threading and memoization are pure performance
//! levers — the tuner's output must be *identical* for any `MISO_THREADS`
//! value and with the cross-epoch cache on or off, and a cached tuner must
//! never serve a probe computed under different inputs.

use miso::common::ids::QueryId;
use miso::common::{pool, Budgets, ByteSize};
use miso::core::{MisoTuner, NewDesign, TunerConfig};
use miso::dw::DwCostModel;
use miso::hv::HvCostModel;
use miso::lang::{compile, Catalog};
use miso::optimizer::cost::TransferModel;
use miso::plan::estimate::MapStats;
use miso::plan::{LogicalPlan, Operator};
use miso::views::{ViewCatalog, ViewDef};
use std::collections::BTreeSet;

fn budgets(gib: u64) -> Budgets {
    Budgets::new(
        ByteSize::from_gib(gib),
        ByteSize::from_gib(gib),
        ByteSize::from_gib(gib),
    )
    .with_discretization(ByteSize::from_kib(64))
}

fn stats() -> MapStats {
    let mut s = MapStats::new();
    s.set_log("twitter", 40_000.0, 40_000.0 * 280.0);
    s.set_log("foursquare", 24_000.0, 24_000.0 * 160.0);
    s.set_log("landmarks", 900.0, 900.0 * 190.0);
    s
}

/// Builds a query plan plus a view over its filter subtree.
fn plan_and_view(sql: &str, size: ByteSize) -> (LogicalPlan, ViewDef) {
    let plan = compile(sql, &Catalog::standard()).unwrap();
    let filt = plan
        .nodes()
        .iter()
        .find(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap()
        .id;
    let sub = plan.subplan(filt);
    let def = ViewDef::from_plan(sub, size, 1_000, QueryId(0));
    (plan, def)
}

/// A small mixed universe: several beneficial views over two logs.
fn universe() -> (Vec<LogicalPlan>, ViewCatalog, MapStats, BTreeSet<String>) {
    let sqls = [
        "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
         WHERE t.followers > 1000 GROUP BY t.city",
        "SELECT t.lang AS l, COUNT(*) AS n FROM twitter t \
         WHERE t.retweets > 50 GROUP BY t.lang",
        "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
         WHERE f.likes > 10 GROUP BY f.city",
        "SELECT f.city AS c, COUNT(*) AS n FROM foursquare f \
         WHERE f.likes > 200 GROUP BY f.city",
    ];
    let mut catalog = ViewCatalog::new();
    let mut s = stats();
    let mut hv = BTreeSet::new();
    let mut plans = Vec::new();
    for (i, sql) in sqls.iter().enumerate() {
        let (plan, view) = plan_and_view(sql, ByteSize::from_kib(150 + 40 * i as u64));
        s.set_view(view.name.clone(), 1_000.0, view.size.as_bytes() as f64);
        hv.insert(view.name.clone());
        catalog.register(view);
        plans.push(plan);
    }
    (plans, catalog, s, hv)
}

fn tune_once(
    tuner: &MisoTuner,
    hv: &BTreeSet<String>,
    catalog: &ViewCatalog,
    history: &[LogicalPlan],
    s: &MapStats,
) -> NewDesign {
    tuner.tune(
        hv,
        &BTreeSet::new(),
        catalog,
        history,
        s,
        &HvCostModel::paper_default(),
        &DwCostModel::paper_default(),
        &TransferModel::paper_default(),
    )
}

/// The same workload tuned under every (thread count, cache) combination
/// must yield one design. The sweep runs inside a single test function so
/// the process-global pool setting is only changed here; thread count can
/// never affect any other test's *outcome* — that is the property.
#[test]
fn designs_identical_across_threads_and_caching() {
    let (plans, catalog, s, hv) = universe();
    let history: Vec<LogicalPlan> = (0..8).map(|i| plans[i % plans.len()].clone()).collect();
    let config = TunerConfig {
        budgets: budgets(1),
        history_len: history.len(),
        epoch_len: 3,
        decay: 0.5,
        doi_threshold: 1.0,
    };

    let mut designs = Vec::new();
    for threads in [1usize, 4] {
        for cache in [false, true] {
            pool::set_threads(threads);
            let tuner = MisoTuner::new(config.clone()).with_whatif_cache(cache);
            designs.push(tune_once(&tuner, &hv, &catalog, &history, &s));
            if cache {
                assert!(
                    tuner.whatif_cache_len() > 0,
                    "cache-enabled tuning should memoize probes"
                );
            } else {
                assert_eq!(tuner.whatif_cache_len(), 0);
            }
        }
    }
    pool::set_threads(1);
    assert!(
        !designs[0].hv.is_empty() || !designs[0].dw.is_empty(),
        "universe should produce a non-trivial design"
    );
    for d in &designs[1..] {
        assert_eq!(*d, designs[0], "threading/caching changed the design");
    }
}

/// A second epoch over an unchanged workload is served from the memo: the
/// design repeats and the cache gains no new entries (every probe hit).
#[test]
fn unchanged_workload_reuses_the_cache() {
    let (plans, catalog, s, hv) = universe();
    let history: Vec<LogicalPlan> = (0..6).map(|i| plans[i % plans.len()].clone()).collect();
    let config = TunerConfig {
        budgets: budgets(1),
        history_len: history.len(),
        epoch_len: 3,
        decay: 0.5,
        doi_threshold: 1.0,
    };
    let tuner = MisoTuner::new(config);
    let first = tune_once(&tuner, &hv, &catalog, &history, &s);
    let filled = tuner.whatif_cache_len();
    assert!(filled > 0);
    let second = tune_once(&tuner, &hv, &catalog, &history, &s);
    assert_eq!(first, second, "unchanged inputs must repeat the design");
    assert_eq!(
        tuner.whatif_cache_len(),
        filled,
        "second epoch should add no probes — everything hits the memo"
    );
}

/// Changing a probe-relevant input (view statistics) between epochs must
/// flush the memo: the cached tuner's new design matches what a fresh,
/// cache-free tuner computes on the new stats — a stale cache would keep
/// serving the old costs and the old design.
#[test]
fn stats_change_invalidates_the_cache() {
    let (plan, view) = plan_and_view(
        "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
         WHERE t.followers > 1000 GROUP BY t.city",
        ByteSize::from_kib(200),
    );
    let mut catalog = ViewCatalog::new();
    let name = view.name.clone();
    catalog.register(view);
    let mut s = stats();
    s.set_view(name.clone(), 1_000.0, 200.0 * 1024.0);

    let config = TunerConfig::paper_default(budgets(1));
    let hv: BTreeSet<String> = [name.clone()].into_iter().collect();
    let history = [plan];

    let tuner = MisoTuner::new(config.clone());
    let before = tune_once(&tuner, &hv, &catalog, &history, &s);
    assert!(
        before.dw.contains(&name),
        "small view over a big log starts out beneficial"
    );

    // The view's true size balloons past the log itself: the optimizer's
    // no-views variant wins every probe, so the view stops being relevant.
    s.set_view(name.clone(), 40_000_000.0, 40_000_000.0 * 280.0);
    let after = tune_once(&tuner, &hv, &catalog, &history, &s);
    let fresh = tune_once(
        &MisoTuner::new(config).with_whatif_cache(false),
        &hv,
        &catalog,
        &history,
        &s,
    );
    assert_eq!(
        after, fresh,
        "cached tuner must recompute under the new stats, not serve stale costs"
    );
    assert_ne!(
        before, after,
        "the stats change is drastic enough to flip the design"
    );
}
