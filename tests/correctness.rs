//! Result-correctness integration tests: every rewrite, split, and store
//! path must compute exactly the same rows.

use miso::data::logs::{Corpus, LogsConfig};
use miso::data::Row;
use miso::exec::engine::execute;
use miso::exec::MemSource;
use miso::hv::HvStore;
use miso::lang::compile;
use miso::plan::fingerprint::fingerprint_all;
use miso::views::rewrite_with_views;
use miso::workload::{authored_queries, standard_udfs, workload_catalog};
use std::collections::HashSet;

fn corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn mem_source(corpus: &Corpus) -> MemSource {
    let mut src = MemSource::new();
    src.add_log("twitter", corpus.twitter.lines.clone());
    src.add_log("foursquare", corpus.foursquare.lines.clone());
    src.add_log("landmarks", corpus.landmarks.lines.clone());
    src
}

/// Sorts rows into a canonical bag for order-insensitive comparison.
fn bag(rows: &[Row]) -> Vec<Row> {
    let mut sorted = rows.to_vec();
    sorted.sort();
    sorted
}

#[test]
fn every_workload_query_executes_and_is_deterministic() {
    let corpus = corpus();
    let src = mem_source(&corpus);
    let catalog = workload_catalog();
    let udfs = standard_udfs();
    for spec in authored_queries() {
        let plan = compile(&spec.sql, &catalog)
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", spec.label));
        let a = execute(&plan, &src, &udfs)
            .unwrap_or_else(|e| panic!("{} fails to execute: {e}", spec.label));
        let b = execute(&plan, &src, &udfs).unwrap();
        assert_eq!(
            a.root_rows().unwrap(),
            b.root_rows().unwrap(),
            "{} is nondeterministic",
            spec.label
        );
    }
}

#[test]
fn view_rewrites_preserve_results_for_every_workload_query() {
    // For each query: materialize every internal subtree as a view, rewrite
    // the query over it, and check the rewritten plan computes identical
    // rows. This is the no-corruption guarantee of semantic matching.
    let corpus = corpus();
    let src = mem_source(&corpus);
    let catalog = workload_catalog();
    let udfs = standard_udfs();
    for spec in authored_queries().into_iter().step_by(3) {
        let plan = compile(&spec.sql, &catalog).unwrap();
        let baseline = execute(&plan, &src, &udfs).unwrap();
        let fps = fingerprint_all(&plan);
        for node in plan.nodes() {
            if node.op.is_scan() || node.id == plan.root() {
                continue;
            }
            // Materialize this subtree's output as a view.
            let name = fps[&node.id].view_name();
            let mut view_src = mem_source(&corpus);
            view_src.add_view(name.clone(), baseline.output(node.id).as_ref().clone());
            let available: HashSet<String> = [name.clone()].into_iter().collect();
            let rewrite = rewrite_with_views(&plan, &available);
            if rewrite.used.is_empty() {
                continue; // node sits below a larger replaced subtree sibling
            }
            let rewritten = execute(&rewrite.plan, &view_src, &udfs).unwrap();
            assert_eq!(
                bag(baseline.root_rows().unwrap()),
                bag(rewritten.root_rows().unwrap()),
                "{}: rewrite over {} changed results\nplan:\n{}",
                spec.label,
                name,
                rewrite.plan.render()
            );
        }
    }
}

#[test]
fn hv_store_matches_plain_executor() {
    let corpus = corpus();
    let mut hv = HvStore::new();
    hv.add_log(corpus.twitter.clone());
    hv.add_log(corpus.foursquare.clone());
    hv.add_log(corpus.landmarks.clone());
    let src = mem_source(&corpus);
    let catalog = workload_catalog();
    let udfs = standard_udfs();
    for spec in authored_queries().into_iter().take(8) {
        let plan = compile(&spec.sql, &catalog).unwrap();
        let plain = execute(&plan, &src, &udfs).unwrap();
        let staged = hv.execute(&plan, None, &udfs).unwrap();
        assert_eq!(
            plain.root_rows().unwrap(),
            staged.execution.root_rows().unwrap(),
            "{}: staged HV execution differs",
            spec.label
        );
    }
}

#[test]
fn aggregates_agree_with_manual_computation() {
    // Independent oracle: recompute one workload aggregate by hand from the
    // raw JSON and compare.
    let corpus = corpus();
    let src = mem_source(&corpus);
    let catalog = workload_catalog();
    let plan = compile(
        "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
         WHERE t.followers > 100 GROUP BY t.city",
        &catalog,
    )
    .unwrap();
    let exec = execute(&plan, &src, &standard_udfs()).unwrap();
    let mut expected: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
    for line in &corpus.twitter.lines {
        let v = miso::data::json::parse_json(line).unwrap();
        let followers = v
            .get_field("followers")
            .and_then(miso::data::Value::as_i64)
            .unwrap();
        if followers > 100 {
            let city = v
                .get_field("city")
                .and_then(|c| c.as_str().map(str::to_string))
                .unwrap();
            *expected.entry(city).or_insert(0) += 1;
        }
    }
    let got: std::collections::HashMap<String, i64> = exec
        .root_rows()
        .unwrap()
        .iter()
        .map(|row| {
            (
                row.get(0).as_str().unwrap().to_string(),
                row.get(1).as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(expected, got);
}

#[test]
fn join_agrees_with_manual_computation() {
    let corpus = corpus();
    let src = mem_source(&corpus);
    let catalog = workload_catalog();
    let plan = compile(
        "SELECT COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE l.rating > 3.0",
        &catalog,
    )
    .unwrap();
    let exec = execute(&plan, &src, &standard_udfs()).unwrap();
    let got = exec.root_rows().unwrap()[0].get(0).as_i64().unwrap();

    // Manual: count check-ins whose venue is listed with rating > 3.
    let mut good_venues = std::collections::HashSet::new();
    for line in &corpus.landmarks.lines {
        let v = miso::data::json::parse_json(line).unwrap();
        let rating = v
            .get_field("rating")
            .and_then(miso::data::Value::as_f64)
            .unwrap();
        if rating > 3.0 {
            good_venues.insert(
                v.get_field("venue_id")
                    .and_then(miso::data::Value::as_i64)
                    .unwrap(),
            );
        }
    }
    let expected = corpus
        .foursquare
        .lines
        .iter()
        .filter(|line| {
            let v = miso::data::json::parse_json(line).unwrap();
            let venue = v
                .get_field("venue_id")
                .and_then(miso::data::Value::as_i64)
                .unwrap();
            good_venues.contains(&venue)
        })
        .count() as i64;
    assert_eq!(expected, got);
}
