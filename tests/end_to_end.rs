//! Cross-crate integration tests: the full multistore system driven over a
//! real (tiny) corpus and a real workload slice, checking the paper's
//! qualitative claims and the system's internal invariants.

use miso::common::{Budgets, ByteSize};
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::lang::compile;
use miso::plan::LogicalPlan;
use miso::workload::{standard_udfs, workload_catalog};

fn tiny_corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system(corpus: &Corpus) -> MultistoreSystem {
    MultistoreSystem::new(
        corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    )
}

/// A small evolving stream exercising joins, UDFs, refinement, and drift.
fn stream() -> Vec<(String, LogicalPlan)> {
    let catalog = workload_catalog();
    [
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city HAVING COUNT(*) > 2 ORDER BY n DESC",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category",
        "SELECT b.city AS city, MAX(b.buzz) AS peak FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.1 GROUP BY b.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city ORDER BY mood DESC LIMIT 3",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category ORDER BY n DESC",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &catalog).unwrap()))
    .collect()
}

#[test]
fn all_variants_compute_identical_results() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut reference: Option<Vec<u64>> = None;
    for variant in Variant::ALL {
        let mut sys = system(&corpus);
        let result = sys.run_workload(variant, &queries).unwrap();
        let counts: Vec<u64> = result.records.iter().map(|r| r.result_rows).collect();
        match &reference {
            None => reference = Some(counts),
            Some(expected) => {
                assert_eq!(expected, &counts, "{variant} disagrees on results")
            }
        }
    }
}

#[test]
fn tuned_variants_beat_untuned() {
    let corpus = tiny_corpus();
    let queries = stream();
    let total = |variant: Variant| {
        let mut sys = system(&corpus);
        sys.run_workload(variant, &queries)
            .unwrap()
            .tti_total()
            .as_secs_f64()
    };
    let hv_only = total(Variant::HvOnly);
    let ms_basic = total(Variant::MsBasic);
    let ms_miso = total(Variant::MsMiso);
    assert!(
        ms_basic <= hv_only * 1.01,
        "multistore never loses to HV-only"
    );
    assert!(ms_miso < hv_only, "MISO accelerates the stream");
    assert!(ms_miso < ms_basic, "tuning beats per-query splitting alone");
}

#[test]
fn dw_storage_budget_is_respected_after_every_reorg() {
    let corpus = tiny_corpus();
    let queries = stream();
    // Very small DW budget to force real knapsack pressure.
    let tight = Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_kib(64),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(8));
    let mut sys = MultistoreSystem::new(
        &corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(tight),
    );
    sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert!(
        sys.dw.total_view_bytes() <= ByteSize::from_kib(64),
        "DW design exceeds B_d: {}",
        sys.dw.total_view_bytes()
    );
}

#[test]
fn designs_stay_disjoint_and_catalog_consistent() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut sys = system(&corpus);
    sys.run_workload(Variant::MsMiso, &queries).unwrap();
    let hv: Vec<String> = sys.hv.view_names();
    let dw: Vec<String> = sys.dw.view_names();
    for v in &hv {
        assert!(!dw.contains(v), "view {v} duplicated across stores");
    }
    // Every resident view has catalog metadata; every catalog entry is
    // resident somewhere.
    for v in hv.iter().chain(dw.iter()) {
        assert!(
            sys.catalog.contains(v),
            "resident view {v} missing from catalog"
        );
    }
    for name in sys.catalog.names() {
        assert!(
            sys.hv.has_view(&name) || sys.dw.has_view(&name),
            "catalog entry {name} resident nowhere"
        );
    }
}

#[test]
fn zero_transfer_budget_disables_dw_placement() {
    let corpus = tiny_corpus();
    let queries = stream();
    let frozen = Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::ZERO,
    )
    .with_discretization(ByteSize::from_kib(16));
    let mut sys = MultistoreSystem::new(
        &corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(frozen),
    );
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert!(
        sys.dw.view_names().is_empty(),
        "nothing can move under B_t = 0"
    );
    assert!(result.reorgs.iter().all(|r| r.moved_to_dw.is_empty()));
}

#[test]
fn oracle_never_loses_to_miso() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut miso_sys = system(&corpus);
    let miso = miso_sys.run_workload(Variant::MsMiso, &queries).unwrap();
    let mut ora_sys = system(&corpus);
    let ora = ora_sys.run_workload(Variant::MsOra, &queries).unwrap();
    assert!(
        ora.tti_total().as_secs_f64() <= miso.tti_total().as_secs_f64() * 1.05,
        "oracle {} vs miso {}",
        ora.tti_total(),
        miso.tti_total()
    );
}

#[test]
fn dw_only_etl_dominates_and_queries_are_fast() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut sys = system(&corpus);
    let result = sys.run_workload(Variant::DwOnly, &queries).unwrap();
    assert!(result.tti.etl > result.tti.dw_exe);
    // Every post-ETL query is far faster than its HV-only twin.
    let mut hv_sys = system(&corpus);
    let hv = hv_sys.run_workload(Variant::HvOnly, &queries).unwrap();
    for (dw_rec, hv_rec) in result.records.iter().zip(&hv.records) {
        assert!(
            dw_rec.exec_total().as_secs_f64() < hv_rec.exec_total().as_secs_f64() / 5.0,
            "{}: {} vs {}",
            dw_rec.label,
            dw_rec.exec_total(),
            hv_rec.exec_total()
        );
    }
}

#[test]
fn records_and_clock_are_consistent() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut sys = system(&corpus);
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert_eq!(result.records.len(), queries.len());
    // finished_at is monotone and the last one equals total TTI.
    let times = result.cumulative_tti();
    for pair in times.windows(2) {
        assert!(pair[0] <= pair[1]);
    }
    assert_eq!(*times.last().unwrap(), result.tti_total());
    // The TTI breakdown equals the sum of per-query components plus
    // tune/etl.
    let per_query_sum: f64 = result
        .records
        .iter()
        .map(|r| r.exec_total().as_secs_f64())
        .sum();
    let breakdown = result.tti.hv_exe + result.tti.dw_exe + result.tti.transfer;
    assert!((per_query_sum - breakdown.as_secs_f64()).abs() < 1.0);
}

#[test]
fn lru_variants_respect_budgets_between_queries() {
    let corpus = tiny_corpus();
    let queries = stream();
    let tight = Budgets::new(
        ByteSize::from_kib(256),
        ByteSize::from_kib(64),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(8));
    let mut sys = MultistoreSystem::new(
        &corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(tight),
    );
    sys.run_workload(Variant::MsLru, &queries).unwrap();
    assert!(sys.hv.total_view_bytes() <= ByteSize::from_kib(256));
    assert!(sys.dw.total_view_bytes() <= ByteSize::from_kib(64));
}
