//! miso-xray integration tests: per-operator profiles, their thread-count
//! invariance, and the calibration feedback loop's determinism contract.
//!
//! The profiling flag and the worker pool are process-global, so every test
//! that flips either serializes on one lock (and restores the prior state),
//! keeping the default parallel test runner race-free.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use miso::common::{pool, Budgets, ByteSize, Result};
use miso::core::{ExperimentResult, MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::data::{DataType, Field, Row, Schema, Value};
use miso::dw::DwCostModel;
use miso::exec::engine::execute;
use miso::exec::{profile, DataSource, MemSource, Udf, UdfRegistry};
use miso::hv::HvCostModel;
use miso::lang::compile;
use miso::plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};

fn lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Restores the profiling flag (and optionally the pool width) on drop, so
/// assertion failures cannot leak state into later tests.
struct FlagGuard {
    was_profiling: bool,
    threads: usize,
}

impl FlagGuard {
    fn set(profiling: bool) -> FlagGuard {
        let g = FlagGuard {
            was_profiling: profile::enabled(),
            threads: pool::threads(),
        };
        profile::set_enabled(profiling);
        g
    }
}

impl Drop for FlagGuard {
    fn drop(&mut self) {
        profile::set_enabled(self.was_profiling);
        pool::set_threads(self.threads);
    }
}

fn int_field(name: &str) -> Field {
    Field::new(name, DataType::Int)
}

/// ScanLog → Udf → Filter → Sort → Limit over enough rows to span many
/// morsels, with malformed lines mixed in.
fn log_plan() -> (LogicalPlan, MemSource, UdfRegistry) {
    let mut lines = Vec::new();
    for i in 0..20_000u64 {
        if i % 61 == 17 {
            lines.push(format!("not json #{i}"));
        } else {
            lines.push(format!(
                r#"{{"uid": {}, "score": {}}}"#,
                i % 900,
                (i * 13) % 500
            ));
        }
    }
    let mut src = MemSource::new();
    src.add_log("events", lines);

    let mut udfs = UdfRegistry::new();
    let udf_schema = Schema::new(vec![int_field("uid"), int_field("score")]);
    udfs.register(Udf::new(
        "uid_score",
        udf_schema.clone(),
        Arc::new(|row: &Row| {
            let rec = row.get(0);
            match (
                rec.get_field("uid").and_then(Value::as_i64),
                rec.get_field("score").and_then(Value::as_i64),
            ) {
                (Some(uid), Some(score)) if uid % 7 != 3 => {
                    Ok(vec![Row::new(vec![Value::Int(uid), Value::Int(score)])])
                }
                _ => Ok(vec![]),
            }
        }),
    ));

    let mut b = PlanBuilder::new();
    let scan = b
        .add(
            Operator::ScanLog {
                log: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let udf = b
        .add(
            Operator::Udf {
                name: "uid_score".into(),
                output: udf_schema,
            },
            vec![scan],
        )
        .unwrap();
    let filt = b
        .add(
            Operator::Filter {
                predicate: Expr::Binary {
                    op: BinOp::Lt,
                    left: Box::new(Expr::col(1)),
                    right: Box::new(Expr::lit(400i64)),
                },
            },
            vec![udf],
        )
        .unwrap();
    let sort = b
        .add(
            Operator::Sort {
                keys: vec![(1, true), (0, false)],
            },
            vec![filt],
        )
        .unwrap();
    let limit = b.add(Operator::Limit { n: 1000 }, vec![sort]).unwrap();
    (b.finish(limit).unwrap(), src, udfs)
}

/// ScanView ×2 → Join → Project → Aggregate.
fn join_plan() -> (LogicalPlan, MemSource) {
    let mut src = MemSource::new();
    src.add_view(
        "facts",
        (0..30_000)
            .map(|i| Row::new(vec![Value::Int(i % 1500), Value::Int((i * 31) % 1000)]))
            .collect(),
    );
    src.add_view(
        "dims",
        (0..1500)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(format!("seg-{:02}", i % 40)),
                ])
            })
            .collect(),
    );
    let mut b = PlanBuilder::new();
    let facts = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: Schema::new(vec![int_field("uid"), int_field("val")]),
            },
            vec![],
        )
        .unwrap();
    let dims = b
        .add(
            Operator::ScanView {
                view: "dims".into(),
                schema: Schema::new(vec![int_field("uid"), Field::new("seg", DataType::Str)]),
            },
            vec![],
        )
        .unwrap();
    let join = b
        .add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dims])
        .unwrap();
    let proj = b
        .add(
            Operator::Project {
                exprs: vec![("seg".into(), Expr::col(3)), ("val".into(), Expr::col(1))],
            },
            vec![join],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: vec![
                    AggExpr::new(AggFunc::Count, None, "n"),
                    AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                ],
            },
            vec![proj],
        )
        .unwrap();
    (b.finish(agg).unwrap(), src)
}

/// A [`DataSource`] that never hands out shared row vectors, forcing the
/// copying `ScanView` path (the system's stores share; `MemSource` shares;
/// this covers the other branch).
struct NoShareSource(MemSource);

impl DataSource for NoShareSource {
    fn log_lines(&self, log: &str) -> Result<&[String]> {
        self.0.log_lines(log)
    }
    fn view_rows(&self, view: &str) -> Result<&[Row]> {
        self.0.view_rows(view)
    }
}

/// Every executed node gets a profile whose row accounting matches the
/// execution's own `rows_out`, and whose `rows_in` is the sum of its inputs'
/// outputs — across every operator kind and both `ScanView` paths.
#[test]
fn profiled_rows_match_rows_out_for_every_operator() {
    let _g = lock();
    let _flags = FlagGuard::set(true);

    let (lplan, lsrc, udfs) = log_plan();
    let (jplan, jsrc) = join_plan();
    let no_share = NoShareSource(jsrc.clone());

    let runs: Vec<(&str, miso::exec::Execution, &LogicalPlan)> = vec![
        (
            "log pipeline",
            execute(&lplan, &lsrc, &udfs).unwrap(),
            &lplan,
        ),
        (
            "join (zero-copy scans)",
            execute(&jplan, &jsrc, &UdfRegistry::new()).unwrap(),
            &jplan,
        ),
        (
            "join (copying scans)",
            execute(&jplan, &no_share, &UdfRegistry::new()).unwrap(),
            &jplan,
        ),
    ];
    for (what, exec, plan) in &runs {
        for node in plan.nodes() {
            let p = exec
                .profile(node.id)
                .unwrap_or_else(|| panic!("{what}: node {} has no profile", node.id));
            assert_eq!(
                p.rows_out,
                exec.rows_out(node.id).unwrap_or(0),
                "{what}: node {} rows_out",
                node.id
            );
            let in_sum: u64 = node.inputs.iter().filter_map(|i| exec.rows_out(*i)).sum();
            assert_eq!(p.rows_in, in_sum, "{what}: node {} rows_in", node.id);
            if p.rows_out > 0 {
                assert!(p.bytes_out > 0, "{what}: node {} bytes_out", node.id);
            }
        }
        assert_eq!(
            exec.profiles().len(),
            plan.len(),
            "{what}: one profile per node"
        );
    }
    // The zero-copy and copying scans must agree on all row/byte accounting;
    // only the scan nodes' morsel counts legitimately differ (a zero-copy
    // scan is a refcount bump, not a morsel dispatch).
    for node in runs[1].2.nodes() {
        let zc = runs[1].1.profile(node.id).unwrap();
        let cp = runs[2].1.profile(node.id).unwrap();
        if matches!(node.op, Operator::ScanView { .. }) {
            assert_eq!(
                (zc.rows_in, zc.rows_out, zc.bytes_out),
                (cp.rows_in, cp.rows_out, cp.bytes_out),
                "scan-path divergence at node {}",
                node.id
            );
            assert_eq!((zc.morsels, zc.par_rows), (0, 0), "zero-copy scan morsels");
        } else {
            assert_eq!(
                zc.deterministic(),
                cp.deterministic(),
                "scan-path divergence at node {}",
                node.id
            );
        }
    }
}

/// All profile fields except wall time are a pure function of the plan and
/// data: byte-identical at 1, 2 and 8 workers.
#[test]
fn profiles_are_thread_count_invariant() {
    let _g = lock();
    let _flags = FlagGuard::set(true);

    let (lplan, lsrc, udfs) = log_plan();
    let (jplan, jsrc) = join_plan();
    for (what, plan, run) in [
        ("log pipeline", &lplan, 0usize),
        ("join pipeline", &jplan, 1),
    ] {
        let mut baseline: Option<BTreeMap<u64, (u64, u64, u64, u64, u64)>> = None;
        for t in [1usize, 2, 8] {
            pool::set_threads(t);
            let exec = if run == 0 {
                execute(plan, &lsrc, &udfs).unwrap()
            } else {
                execute(plan, &jsrc, &UdfRegistry::new()).unwrap()
            };
            let got: BTreeMap<u64, _> = exec
                .profiles()
                .iter()
                .map(|(id, p)| (id.raw(), p.deterministic()))
                .collect();
            match &baseline {
                None => baseline = Some(got),
                Some(want) => assert_eq!(want, &got, "{what} @ {t} threads"),
            }
        }
    }
}

// --- system-level tests over the tiny corpus ---------------------------

fn tiny_corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn config() -> SystemConfig {
    SystemConfig::paper_default(
        Budgets::new(
            ByteSize::from_mib(32),
            ByteSize::from_mib(4),
            ByteSize::from_mib(2),
        )
        .with_discretization(ByteSize::from_kib(16)),
    )
}

fn stream() -> Vec<(String, LogicalPlan)> {
    let catalog = miso::workload::workload_catalog();
    [
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category",
        "SELECT b.city AS city, MAX(b.buzz) AS peak FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.1 GROUP BY b.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city ORDER BY mood DESC LIMIT 3",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category ORDER BY n DESC",
        "SELECT t.city AS city, COUNT(*) AS n FROM twitter t GROUP BY t.city",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &catalog).unwrap()))
    .collect()
}

fn run_with(config: SystemConfig, corpus: &Corpus) -> (MultistoreSystem, ExperimentResult) {
    let mut sys = MultistoreSystem::new(
        corpus,
        miso::workload::workload_catalog(),
        miso::workload::standard_udfs(),
        config,
    );
    let result = sys.run_workload(Variant::MsMiso, &stream()).unwrap();
    (sys, result)
}

/// Everything a figure binary prints derives from these fields; equality
/// here is what makes fig3/fig5 stdout byte-identical across the flag.
fn assert_results_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{what}: query count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.label, rb.label, "{what}: label");
        assert_eq!(ra.result_rows, rb.result_rows, "{what}: {} rows", ra.label);
        assert_eq!(ra.used_views, rb.used_views, "{what}: {} views", ra.label);
        assert_eq!(ra.hv, rb.hv, "{what}: {} hv time", ra.label);
        assert_eq!(ra.dw, rb.dw, "{what}: {} dw time", ra.label);
        assert_eq!(ra.transfer, rb.transfer, "{what}: {} transfer", ra.label);
    }
    assert_eq!(a.reorgs.len(), b.reorgs.len(), "{what}: reorg count");
    for (ra, rb) in a.reorgs.iter().zip(&b.reorgs) {
        assert_eq!(ra.moved_to_dw, rb.moved_to_dw, "{what}: design (to DW)");
        assert_eq!(ra.moved_to_hv, rb.moved_to_hv, "{what}: design (to HV)");
        assert_eq!(ra.dropped, rb.dropped, "{what}: design (dropped)");
    }
}

fn assert_hv_model_eq(a: &HvCostModel, b: &HvCostModel, what: &str) {
    assert_eq!(a.job_startup, b.job_startup, "{what}: hv job_startup");
    assert_eq!(
        a.read_secs_per_byte, b.read_secs_per_byte,
        "{what}: hv read rate"
    );
    assert_eq!(
        a.write_secs_per_byte, b.write_secs_per_byte,
        "{what}: hv write rate"
    );
    assert_eq!(
        a.cpu_secs_per_row, b.cpu_secs_per_row,
        "{what}: hv cpu rate"
    );
    assert_eq!(
        a.dump_secs_per_byte, b.dump_secs_per_byte,
        "{what}: hv dump rate"
    );
}

fn assert_dw_model_eq(a: &DwCostModel, b: &DwCostModel, what: &str) {
    assert_eq!(a.query_startup, b.query_startup, "{what}: dw query_startup");
    assert_eq!(
        a.read_secs_per_byte, b.read_secs_per_byte,
        "{what}: dw read rate"
    );
    assert_eq!(
        a.cpu_secs_per_row, b.cpu_secs_per_row,
        "{what}: dw cpu rate"
    );
    assert_eq!(
        a.load_secs_per_byte, b.load_secs_per_byte,
        "{what}: dw load rate"
    );
}

/// Profiling is observation-only: flipping it changes neither query results
/// nor tuner designs, and off means no xray artifacts at all.
#[test]
fn profiling_flag_does_not_change_results_or_designs() {
    let _g = lock();
    let corpus = tiny_corpus();

    let _flags = FlagGuard::set(false);
    let (sys_off, off) = run_with(config(), &corpus);
    assert!(
        sys_off.xrays().is_empty(),
        "no xray artifacts with profiling off"
    );

    profile::set_enabled(true);
    let (sys_on, on) = run_with(config(), &corpus);
    assert!(
        !sys_on.xrays().is_empty(),
        "profiling on collects an xray per query"
    );
    assert_eq!(sys_on.xrays().len(), on.records.len());

    assert_results_identical(&off, &on, "profiling off vs on");
}

/// With `calibrate_costs` off (the default), a full run — drift accumulation
/// included — leaves the cost models bit-identical to `paper_default`, and
/// per-epoch calibration reports are still emitted.
#[test]
fn calibration_off_leaves_cost_models_untouched() {
    let _g = lock();
    let _flags = FlagGuard::set(true);
    let corpus = tiny_corpus();

    let cfg = config();
    assert!(!cfg.calibrate_costs, "paper default is calibration off");
    let (sys, result) = run_with(cfg, &corpus);

    assert_hv_model_eq(
        &sys.hv.cost_model,
        &HvCostModel::paper_default(),
        "flag off",
    );
    assert_dw_model_eq(
        &sys.dw.cost_model,
        &DwCostModel::paper_default(),
        "flag off",
    );
    assert!(
        !result.calibrations.is_empty(),
        "drift reports are emitted even when feedback is off"
    );
    for report in &result.calibrations {
        assert!(report.hv.samples > 0 || report.dw.samples > 0);
    }
}

/// With `calibrate_costs` on, the fitted scale factors actually move the
/// models — and the whole loop stays deterministic: two identical runs
/// produce identical results, designs, and fitted models.
#[test]
fn calibration_on_adjusts_models_deterministically() {
    let _g = lock();
    let _flags = FlagGuard::set(true);
    let corpus = tiny_corpus();

    let mut cfg = config();
    cfg.calibrate_costs = true;
    let (sys_a, a) = run_with(cfg.clone(), &corpus);
    let (sys_b, b) = run_with(cfg, &corpus);

    assert_results_identical(&a, &b, "calibrated run determinism");
    assert_hv_model_eq(&sys_a.hv.cost_model, &sys_b.hv.cost_model, "determinism");
    assert_dw_model_eq(&sys_a.dw.cost_model, &sys_b.dw.cost_model, "determinism");

    let def = HvCostModel::paper_default();
    let moved = sys_a.hv.cost_model.read_secs_per_byte != def.read_secs_per_byte
        || sys_a.hv.cost_model.cpu_secs_per_row != def.cpu_secs_per_row
        || sys_a.dw.cost_model.read_secs_per_byte
            != DwCostModel::paper_default().read_secs_per_byte;
    assert!(moved, "calibration feedback should rescale the models");
}

/// The drift gauges land in metrics snapshots when observability is on.
#[test]
fn drift_gauges_appear_in_metrics_snapshot() {
    let _g = lock();
    let _flags = FlagGuard::set(true);
    let corpus = tiny_corpus();

    miso_obs::init(miso_obs::ObsConfig::ring(4096));
    miso_obs::reset_metrics();
    let (_sys, result) = run_with(config(), &corpus);
    let snap = miso_obs::snapshot();
    miso_obs::init(miso_obs::ObsConfig::disabled());

    for gauge in [
        "xray.cost_drift_hv",
        "xray.cost_drift_transfer",
        "xray.cost_drift_dw",
    ] {
        assert!(
            snap.gauges.contains_key(gauge),
            "missing gauge {gauge}; have {:?}",
            snap.gauges.keys().collect::<Vec<_>>()
        );
    }
    assert!(!result.calibrations.is_empty());
    let report = &result.calibrations[0];
    let v = report.to_value();
    assert!(v.get_field("hv").is_some());
    assert!(v.get_field("classes").is_some());
}
