//! Behavioral tests for the tuning policies: the semantics that distinguish
//! the paper's variants from one another.

use miso::common::{Budgets, ByteSize};
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::lang::compile;
use miso::plan::LogicalPlan;
use miso::workload::{standard_udfs, workload_catalog};

fn corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system(corpus: &Corpus, budgets: Budgets) -> MultistoreSystem {
    MultistoreSystem::new(
        corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(budgets),
    )
}

fn q(sql: &str) -> LogicalPlan {
    compile(sql, &workload_catalog()).unwrap()
}

#[test]
fn ms_off_tunes_exactly_once() {
    let corpus = corpus();
    let queries: Vec<_> = (0..7)
        .map(|i| {
            (
                format!("q{i}"),
                q(&format!(
                    "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                     WHERE t.followers > {} GROUP BY t.city",
                    10 + i
                )),
            )
        })
        .collect();
    let mut sys = system(&corpus, budgets());
    let result = sys.run_workload(Variant::MsOff, &queries).unwrap();
    // The offline policy never reorganizes during the stream (any design
    // installation happens as views appear, recorded as TUNE time, with no
    // reorg events beyond none at all).
    assert!(result.reorgs.is_empty());
}

#[test]
fn ms_miso_reorgs_at_the_configured_cadence() {
    let corpus = corpus();
    let queries: Vec<_> = (0..9)
        .map(|i| {
            (
                format!("q{i}"),
                q("SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                   WHERE t.followers > 10 GROUP BY t.city"),
            )
        })
        .collect();
    let mut sys = system(&corpus, budgets());
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    // reorg_every = 3, 9 queries → reorgs before queries 3 and 6 (i > 0).
    assert_eq!(result.reorgs.len(), 2);
}

#[test]
fn repeated_identical_queries_collapse_after_first_reorg() {
    // The strongest tuning claim: an exactly repeated query becomes nearly
    // free once its result view reaches DW.
    let corpus = corpus();
    let queries: Vec<_> = (0..6)
        .map(|i| {
            (
                format!("rep{i}"),
                q("SELECT t.lang AS l, COUNT(*) AS n, AVG(t.sentiment) AS m \
                   FROM twitter t WHERE t.retweets > 1 GROUP BY t.lang"),
            )
        })
        .collect();
    let mut sys = system(&corpus, budgets());
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    let first = result.records[0].exec_total().as_secs_f64();
    let last = result.records[5].exec_total().as_secs_f64();
    assert!(
        last < first / 100.0,
        "repeat should be ~free: first {first}, last {last}"
    );
    // And it ran fully in the warehouse.
    assert_eq!(result.records[5].hv_ops, 0);
}

#[test]
fn containment_reuse_serves_tightened_predicates() {
    // v2 tightens v1's filter: the system must answer v2 from v1's filter
    // view plus compensation, and the answer must match a cold system.
    let corpus = corpus();
    let v1 = q("SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                WHERE t.followers > 10 GROUP BY t.city");
    // The added conjunct references already-extracted fields, so v1's
    // filter view subsumes v2's filter over the same extraction base.
    let v2 = q("SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                WHERE t.followers > 10 AND t.city <> 'miami' GROUP BY t.city");
    let stream = vec![("v1".to_string(), v1), ("v2".to_string(), v2.clone())];
    let mut sys = system(&corpus, budgets());
    let tuned = sys.run_workload(Variant::MsMiso, &stream).unwrap();
    assert!(
        !tuned.records[1].used_views.is_empty(),
        "v2 should reuse v1's by-products (containment)"
    );
    // On the tiny test corpus Hive's fixed per-job startup dominates, so
    // the win is the skipped base scan, not a multiple.
    assert!(
        tuned.records[1].exec_total().as_secs_f64()
            < tuned.records[0].exec_total().as_secs_f64() * 0.9,
        "containment reuse must pay off: {} vs {}",
        tuned.records[1].exec_total(),
        tuned.records[0].exec_total()
    );
    let mut cold = system(&corpus, budgets());
    let fresh = cold
        .run_workload(Variant::HvOnly, &[("v2".to_string(), v2)])
        .unwrap();
    assert_eq!(tuned.records[1].result_rows, fresh.records[0].result_rows);
}

#[test]
fn reorg_respects_the_transfer_budget() {
    let corpus = corpus();
    // Small, discretization-aligned transfer budget.
    let b = Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_kib(64),
    )
    .with_discretization(ByteSize::from_kib(16));
    let queries: Vec<_> = (0..9)
        .map(|i| {
            (
                format!("q{i}"),
                q(&format!(
                    "SELECT t.city AS c, COUNT(*) AS n FROM twitter t \
                     WHERE t.followers > {} GROUP BY t.city",
                    5 * (i % 3)
                )),
            )
        })
        .collect();
    let mut sys = system(&corpus, b);
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    for reorg in &result.reorgs {
        assert!(
            reorg.bytes_moved <= ByteSize::from_kib(64 + 16),
            "reorg moved {} against B_t = 64KiB",
            reorg.bytes_moved
        );
    }
}

#[test]
fn bigger_transfer_budget_never_hurts_much() {
    let corpus = corpus();
    let queries: Vec<_> = (0..8)
        .map(|i| {
            (
                format!("q{i}"),
                q("SELECT t.city AS c, COUNT(*) AS n, MAX(t.followers) AS f \
                   FROM twitter t WHERE t.followers > 20 GROUP BY t.city"),
            )
        })
        .collect();
    let total = |bt: ByteSize| {
        let b = Budgets::new(ByteSize::from_mib(32), ByteSize::from_mib(4), bt)
            .with_discretization(ByteSize::from_kib(16));
        let mut sys = system(&corpus, b);
        sys.run_workload(Variant::MsMiso, &queries)
            .unwrap()
            .tti_total()
            .as_secs_f64()
    };
    let tight = total(ByteSize::from_kib(16));
    let roomy = total(ByteSize::from_mib(4));
    assert!(
        roomy <= tight * 1.10,
        "roomier B_t should not regress materially: {roomy} vs {tight}"
    );
}

#[test]
fn ms_ora_adapts_to_a_future_shift_faster_than_history_tuning() {
    // Stream: phase 1 queries twitter, phase 2 abruptly queries foursquare.
    // The oracle sees the shift coming at the reorg boundary.
    let corpus = corpus();
    let twitter = q("SELECT t.city AS c, COUNT(*) AS n, AVG(t.sentiment) AS m \
                     FROM twitter t WHERE t.followers > 10 GROUP BY t.city");
    let foursquare = q("SELECT f.city AS c, COUNT(*) AS n, AVG(f.likes) AS m \
                        FROM foursquare f WHERE f.likes > 0 GROUP BY f.city");
    let mut stream = Vec::new();
    for i in 0..3 {
        stream.push((format!("t{i}"), twitter.clone()));
    }
    for i in 0..6 {
        stream.push((format!("f{i}"), foursquare.clone()));
    }
    let mut miso_sys = system(&corpus, budgets());
    let miso = miso_sys.run_workload(Variant::MsMiso, &stream).unwrap();
    let mut ora_sys = system(&corpus, budgets());
    let ora = ora_sys.run_workload(Variant::MsOra, &stream).unwrap();
    assert!(
        ora.tti_total().as_secs_f64() <= miso.tti_total().as_secs_f64() * 1.01,
        "oracle {} vs history {}",
        ora.tti_total(),
        miso.tti_total()
    );
}
