//! Property-based tests (proptest) over the core data structures and
//! algorithmic invariants.
//!
//! These need the crates.io `proptest` crate, which the offline build cannot
//! resolve; enable the `extern-deps` feature (and restore the dependency in
//! Cargo.toml) to run them.
#![cfg(feature = "extern-deps")]

use miso::common::rng::DetRng;
use miso::common::ByteSize;
use miso::core::{m_knapsack, PackItem};
use miso::data::json::{parse_json, to_json};
use miso::data::Value;
use miso::plan::split::enumerate_splits;
use miso::plan::{AggExpr, AggFunc, Expr, LogicalPlan, Operator, PlanBuilder};
use miso::views::decay_weights;
use proptest::prelude::*;

// ---- JSON round-trips -------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: non-finite serialize to null by design.
        (-1e15f64..1e15f64).prop_map(Value::Float),
        "[a-zA-Z0-9 _äöü€]{0,24}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..5)
                .prop_map(|fields| Value::object(fields.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn json_roundtrip(v in arb_value()) {
        let text = to_json(&v);
        let back = parse_json(&text).unwrap();
        // Floats that happen to be integral parse back as Int; Value's
        // cross-type equality makes this comparison still exact.
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_never_panics_on_garbage(s in "\\PC{0,64}") {
        let _ = parse_json(&s);
    }
}

// ---- Value ordering is a total order -----------------------------------

proptest! {
    #[test]
    fn value_ordering_is_total_and_antisymmetric(
        a in arb_value(),
        b in arb_value(),
        c in arb_value()
    ) {
        use std::cmp::Ordering;
        // antisymmetry
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // transitivity (spot check)
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // equality consistent with hashing
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}

// ---- Knapsack optimality vs brute force ---------------------------------

fn arb_items() -> impl Strategy<Value = Vec<PackItem>> {
    prop::collection::vec((0u64..6, 0u64..4, 0.0f64..100.0), 0..10).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (s, t, b))| PackItem {
                views: vec![format!("v{i}")],
                storage_units: s,
                transfer_units: t,
                benefit: b,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn knapsack_matches_brute_force(
        items in arb_items(),
        storage in 0u64..12,
        transfer in 0u64..8
    ) {
        let dp = m_knapsack(&items, storage, transfer);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << items.len()) {
            let mut s = 0;
            let mut t = 0;
            let mut b = 0.0;
            for (i, item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s += item.storage_units;
                    t += item.transfer_units;
                    b += item.benefit;
                }
            }
            if s <= storage && t <= transfer {
                best = best.max(b);
            }
        }
        prop_assert!((dp.benefit - best).abs() < 1e-9,
            "dp {} vs brute {best}", dp.benefit);
        prop_assert!(dp.storage_used <= storage);
        prop_assert!(dp.transfer_used <= transfer);
    }
}

// ---- Split enumeration invariants ---------------------------------------

/// Random linear-with-one-join plan shapes.
fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    (1usize..4, 0usize..3, any::<bool>()).prop_map(|(left_len, right_len, join)| {
        let mut b = PlanBuilder::new();
        let mut node = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        for i in 0..left_len {
            node = b
                .add(
                    Operator::Filter {
                        predicate: Expr::col(0).eq(Expr::lit(i as i64)),
                    },
                    vec![node],
                )
                .unwrap();
        }
        if join {
            let mut right = b
                .add(
                    Operator::ScanLog {
                        log: "foursquare".into(),
                    },
                    vec![],
                )
                .unwrap();
            for i in 0..right_len {
                right = b
                    .add(
                        Operator::Filter {
                            predicate: Expr::col(0).eq(Expr::lit(i as i64)),
                        },
                        vec![right],
                    )
                    .unwrap();
            }
            node = b
                .add(Operator::Join { on: vec![(0, 0)] }, vec![node, right])
                .unwrap();
        }
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![node],
            )
            .unwrap();
        b.finish(agg).unwrap()
    })
}

proptest! {
    #[test]
    fn enumerated_splits_are_valid_unique_and_include_hv_only(p in arb_plan()) {
        let splits = enumerate_splits(&p);
        prop_assert!(!splits.is_empty());
        for s in &splits {
            prop_assert!(s.validate(&p).is_ok());
        }
        // Uniqueness.
        for i in 0..splits.len() {
            for j in (i + 1)..splits.len() {
                prop_assert_ne!(&splits[i], &splits[j]);
            }
        }
        prop_assert!(splits.iter().any(|s| s.is_hv_only(&p)));
        // Cut working sets are exactly the HV nodes feeding DW nodes.
        for s in &splits {
            for cut in s.cut_nodes(&p) {
                prop_assert!(s.in_hv(cut));
            }
        }
    }
}

// ---- Decay weights -------------------------------------------------------

proptest! {
    #[test]
    fn decay_weights_are_monotone_and_bounded(
        n in 0usize..40,
        epoch in 1usize..8,
        decay in 0.05f64..1.0
    ) {
        let w = decay_weights(n, epoch, decay);
        prop_assert_eq!(w.len(), n);
        for pair in w.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12, "weights increase toward now");
        }
        for &x in &w {
            prop_assert!(x > 0.0 && x <= 1.0);
        }
        if n > 0 {
            prop_assert!((w[n - 1] - 1.0).abs() < 1e-12);
        }
    }
}

// ---- ByteSize discretization ----------------------------------------------

proptest! {
    #[test]
    fn units_ceil_overcharges_but_never_undercharges(
        bytes in 0u64..1_000_000,
        unit_kib in 1u64..128
    ) {
        let size = ByteSize::from_bytes(bytes);
        let unit = ByteSize::from_kib(unit_kib);
        let units = size.units_ceil(unit);
        prop_assert!(units * unit.as_bytes() >= bytes);
        prop_assert!(units.saturating_sub(1) * unit.as_bytes() < bytes || bytes == 0);
    }
}

// ---- Deterministic RNG -----------------------------------------------------

proptest! {
    #[test]
    fn det_rng_streams_replay(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
