//! Property-based tests (proptest) over the core data structures and
//! algorithmic invariants.
//!
//! These need the crates.io `proptest` crate, which the offline build cannot
//! resolve; enable the `extern-deps` feature (and restore the dependency in
//! Cargo.toml) to run them.
#![cfg(feature = "extern-deps")]

use miso::common::rng::DetRng;
use miso::common::ByteSize;
use miso::core::{m_knapsack, PackItem};
use miso::data::json::{parse_json, to_json};
use miso::data::Value;
use miso::plan::split::enumerate_splits;
use miso::plan::{AggExpr, AggFunc, Expr, LogicalPlan, Operator, PlanBuilder};
use miso::views::decay_weights;
use proptest::prelude::*;

// ---- JSON round-trips -------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: non-finite serialize to null by design.
        (-1e15f64..1e15f64).prop_map(Value::Float),
        "[a-zA-Z0-9 _äöü€]{0,24}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::Array),
            prop::collection::vec(("[a-z]{1,8}", inner), 0..5)
                .prop_map(|fields| Value::object(fields.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn json_roundtrip(v in arb_value()) {
        let text = to_json(&v);
        let back = parse_json(&text).unwrap();
        // Floats that happen to be integral parse back as Int; Value's
        // cross-type equality makes this comparison still exact.
        prop_assert_eq!(back, v);
    }

    #[test]
    fn json_never_panics_on_garbage(s in "\\PC{0,64}") {
        let _ = parse_json(&s);
    }
}

// ---- Value ordering is a total order -----------------------------------

proptest! {
    #[test]
    fn value_ordering_is_total_and_antisymmetric(
        a in arb_value(),
        b in arb_value(),
        c in arb_value()
    ) {
        use std::cmp::Ordering;
        // antisymmetry
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // transitivity (spot check)
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
        // equality consistent with hashing
        if a == b {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }
}

// ---- Knapsack optimality vs brute force ---------------------------------

fn arb_items() -> impl Strategy<Value = Vec<PackItem>> {
    prop::collection::vec((0u64..6, 0u64..4, 0.0f64..100.0), 0..10).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (s, t, b))| PackItem {
                views: vec![format!("v{i}")],
                storage_units: s,
                transfer_units: t,
                benefit: b,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn knapsack_matches_brute_force(
        items in arb_items(),
        storage in 0u64..12,
        transfer in 0u64..8
    ) {
        let dp = m_knapsack(&items, storage, transfer);
        let mut best = 0.0f64;
        for mask in 0u32..(1 << items.len()) {
            let mut s = 0;
            let mut t = 0;
            let mut b = 0.0;
            for (i, item) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s += item.storage_units;
                    t += item.transfer_units;
                    b += item.benefit;
                }
            }
            if s <= storage && t <= transfer {
                best = best.max(b);
            }
        }
        prop_assert!((dp.benefit - best).abs() < 1e-9,
            "dp {} vs brute {best}", dp.benefit);
        prop_assert!(dp.storage_used <= storage);
        prop_assert!(dp.transfer_used <= transfer);
    }
}

// ---- Split enumeration invariants ---------------------------------------

/// Random linear-with-one-join plan shapes.
fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    (1usize..4, 0usize..3, any::<bool>()).prop_map(|(left_len, right_len, join)| {
        let mut b = PlanBuilder::new();
        let mut node = b
            .add(
                Operator::ScanLog {
                    log: "twitter".into(),
                },
                vec![],
            )
            .unwrap();
        for i in 0..left_len {
            node = b
                .add(
                    Operator::Filter {
                        predicate: Expr::col(0).eq(Expr::lit(i as i64)),
                    },
                    vec![node],
                )
                .unwrap();
        }
        if join {
            let mut right = b
                .add(
                    Operator::ScanLog {
                        log: "foursquare".into(),
                    },
                    vec![],
                )
                .unwrap();
            for i in 0..right_len {
                right = b
                    .add(
                        Operator::Filter {
                            predicate: Expr::col(0).eq(Expr::lit(i as i64)),
                        },
                        vec![right],
                    )
                    .unwrap();
            }
            node = b
                .add(Operator::Join { on: vec![(0, 0)] }, vec![node, right])
                .unwrap();
        }
        let agg = b
            .add(
                Operator::Aggregate {
                    group_by: vec![],
                    aggs: vec![AggExpr::new(AggFunc::Count, None, "n")],
                },
                vec![node],
            )
            .unwrap();
        b.finish(agg).unwrap()
    })
}

proptest! {
    #[test]
    fn enumerated_splits_are_valid_unique_and_include_hv_only(p in arb_plan()) {
        let splits = enumerate_splits(&p);
        prop_assert!(!splits.is_empty());
        for s in &splits {
            prop_assert!(s.validate(&p).is_ok());
        }
        // Uniqueness.
        for i in 0..splits.len() {
            for j in (i + 1)..splits.len() {
                prop_assert_ne!(&splits[i], &splits[j]);
            }
        }
        prop_assert!(splits.iter().any(|s| s.is_hv_only(&p)));
        // Cut working sets are exactly the HV nodes feeding DW nodes.
        for s in &splits {
            for cut in s.cut_nodes(&p) {
                prop_assert!(s.in_hv(cut));
            }
        }
    }
}

// ---- Decay weights -------------------------------------------------------

proptest! {
    #[test]
    fn decay_weights_are_monotone_and_bounded(
        n in 0usize..40,
        epoch in 1usize..8,
        decay in 0.05f64..1.0
    ) {
        let w = decay_weights(n, epoch, decay);
        prop_assert_eq!(w.len(), n);
        for pair in w.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12, "weights increase toward now");
        }
        for &x in &w {
            prop_assert!(x > 0.0 && x <= 1.0);
        }
        if n > 0 {
            prop_assert!((w[n - 1] - 1.0).abs() < 1e-12);
        }
    }
}

// ---- ByteSize discretization ----------------------------------------------

proptest! {
    #[test]
    fn units_ceil_overcharges_but_never_undercharges(
        bytes in 0u64..1_000_000,
        unit_kib in 1u64..128
    ) {
        let size = ByteSize::from_bytes(bytes);
        let unit = ByteSize::from_kib(unit_kib);
        let units = size.units_ceil(unit);
        prop_assert!(units * unit.as_bytes() >= bytes);
        prop_assert!(units.saturating_sub(1) * unit.as_bytes() < bytes || bytes == 0);
    }
}

// ---- Retry backoff --------------------------------------------------------

proptest! {
    #[test]
    fn backoff_is_bounded_and_replayable(
        seed in any::<u64>(),
        base_ms in 1u64..10_000,
        multiplier in 1.0f64..4.0,
        cap_ms in 1u64..600_000,
        jitter in 0.0f64..1.0,
        attempt in 1u32..12
    ) {
        use miso::common::{RetryPolicy, SimDuration};
        let policy = RetryPolicy {
            max_retries: 4,
            base_delay: SimDuration::from_millis(base_ms),
            multiplier,
            max_delay: SimDuration::from_millis(cap_ms),
            jitter,
        };
        let a = policy.backoff(attempt, &mut DetRng::new(seed));
        let b = policy.backoff(attempt, &mut DetRng::new(seed));
        prop_assert_eq!(a, b, "same seed must replay the same backoff");
        let ceiling = policy.max_delay.as_secs_f64() * (1.0 + jitter) + 1e-9;
        prop_assert!(a.as_secs_f64() <= ceiling, "backoff exceeds jittered cap");
    }
}

// ---- Query guard memory accounting ------------------------------------------

proptest! {
    /// Random charge/release interleavings never drive the recorded peak
    /// past the budget (refused charges are not recorded) and never let the
    /// gauge outrun its own high-water mark.
    #[test]
    fn guard_peak_never_exceeds_budget(
        budget in 1u64..10_000,
        ops in prop::collection::vec((any::<bool>(), 1u64..4_000), 0..64)
    ) {
        use miso::common::QueryGuard;
        let guard = QueryGuard::new(None, budget);
        for (charge, n) in ops {
            if charge {
                let _ = guard.try_charge(n);
            } else {
                guard.release(n);
            }
        }
        prop_assert!(guard.peak() <= budget, "peak {} > budget {budget}", guard.peak());
        prop_assert!(guard.used() <= guard.peak());
    }
}

// ---- Chaos spec parsing ----------------------------------------------------

proptest! {
    #[test]
    fn chaos_spec_parser_never_panics(s in "\\PC{0,64}") {
        let _ = miso::chaos::parse_spec(&s);
    }

    #[test]
    fn chaos_spec_roundtrips_structured_rules(
        seed in any::<u64>(),
        p in 0.01f64..0.99,
        n in 1u64..100
    ) {
        let spec = format!("seed={seed};dw.execute=error@p{p:.2};reorg.step=crash@n{n}");
        let plan = miso::chaos::parse_spec(&spec).unwrap();
        prop_assert_eq!(plan.seed, seed);
        prop_assert_eq!(plan.rules.len(), 2);
        prop_assert_eq!(plan.rules[1].trigger, miso::chaos::Trigger::OnHit(n));
    }
}

// ---- Content checksums ------------------------------------------------------

mod checksum_stability {
    use super::*;
    use miso::data::checksum::{checksum_row, checksum_rows, corrupt_first_row};
    use miso::data::Row;
    use std::sync::Arc;

    fn arb_row() -> impl Strategy<Value = Row> {
        prop::collection::vec(
            prop_oneof![
                Just(Value::Null),
                any::<bool>().prop_map(Value::Bool),
                any::<i64>().prop_map(Value::Int),
                (-1e12f64..1e12f64).prop_map(Value::Float),
                "[a-z0-9 ]{0,12}".prop_map(Value::str),
            ],
            0..5,
        )
        .prop_map(Row::new)
    }

    fn arb_rows() -> impl Strategy<Value = Vec<Row>> {
        prop::collection::vec(arb_row(), 0..12)
    }

    proptest! {
        /// The digest covers the row *multiset*: any emission order (a
        /// recomputed view, a different engine) produces the same checksum.
        #[test]
        fn checksum_is_order_insensitive(rows in arb_rows(), seed in any::<u64>()) {
            let expected = checksum_rows(&rows);
            let mut shuffled = rows.clone();
            let mut rng = DetRng::new(seed);
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.below(i as u64 + 1) as usize);
            }
            prop_assert_eq!(checksum_rows(&shuffled), expected);
            let mut reversed = rows;
            reversed.reverse();
            prop_assert_eq!(checksum_rows(&reversed), expected);
        }

        /// The digest depends only on row *content* — rebuilding every row
        /// from fresh allocations (as a store in another process would)
        /// replays it exactly. Together with the pinned reference digest in
        /// the unit tests this is what makes a materialization-time
        /// checksum comparable after a transfer between stores.
        #[test]
        fn checksum_is_content_only(rows in arb_rows()) {
            let rebuilt: Vec<Row> = rows
                .iter()
                .map(|r| Row::new(r.values().to_vec()))
                .collect();
            prop_assert_eq!(checksum_rows(&rebuilt), checksum_rows(&rows));
            for (a, b) in rows.iter().zip(&rebuilt) {
                prop_assert_eq!(checksum_row(a), checksum_row(b));
            }
        }

        /// The simulated bit-rot helper always changes the multiset digest
        /// (that is its contract: undetectable corruption injection would
        /// silently weaken every integrity test built on it), and it must
        /// not touch other handles to the same shared rows.
        #[test]
        fn injected_corruption_always_changes_the_checksum(
            first in any::<i64>(),
            rest in arb_rows()
        ) {
            let mut rows = vec![Row::new(vec![Value::Int(first)])];
            rows.extend(rest);
            let clean = checksum_rows(&rows);
            let shipped = Arc::new(rows);
            let mut replica = Arc::clone(&shipped);
            prop_assert!(corrupt_first_row(&mut replica));
            prop_assert_ne!(checksum_rows(&replica), clean);
            // Copy-on-write: the already-shipped copy stays pristine.
            prop_assert_eq!(checksum_rows(&shipped), clean);
        }

        /// Dropped duplicates are detected: the final mix binds the row
        /// count, so losing one copy of a repeated row changes the digest
        /// even though a plain XOR/sum of row digests could cancel.
        #[test]
        fn checksum_binds_the_row_count(row in arb_row(), copies in 1usize..6) {
            let rows: Vec<Row> = std::iter::repeat_with(|| row.clone())
                .take(copies)
                .collect();
            let full = checksum_rows(&rows);
            prop_assert_ne!(checksum_rows(&rows[..copies - 1]), full);
        }
    }
}

// ---- Reorganization crash safety -------------------------------------------

/// Crash injection at a random journal step must never lose a view, break
/// the DW budget, or change query answers. The chaos registry is global, so
/// cases serialize on a lock; the clean baseline is computed once.
mod reorg_crash_safety {
    use super::*;
    use miso::chaos::{FaultKind, FaultPlan, FaultRule, Trigger};
    use miso::common::Budgets;
    use miso::core::{MultistoreSystem, SystemConfig, Variant};
    use miso::data::logs::{Corpus, LogsConfig};
    use miso::workload::{standard_udfs, workload_catalog};
    use std::sync::{Mutex, OnceLock};

    static CHAOS_LOCK: Mutex<()> = Mutex::new(());
    static BASELINE: OnceLock<(Corpus, Vec<(String, LogicalPlan)>, Vec<u64>)> = OnceLock::new();

    fn budgets() -> Budgets {
        Budgets::new(
            ByteSize::from_mib(32),
            ByteSize::from_mib(4),
            ByteSize::from_mib(2),
        )
        .with_discretization(ByteSize::from_kib(16))
    }

    fn system(corpus: &Corpus) -> MultistoreSystem {
        MultistoreSystem::new(
            corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets()),
        )
    }

    fn baseline() -> &'static (Corpus, Vec<(String, LogicalPlan)>, Vec<u64>) {
        BASELINE.get_or_init(|| {
            let corpus = Corpus::generate(&LogsConfig::tiny());
            let catalog = workload_catalog();
            let queries: Vec<(String, LogicalPlan)> = [
                "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood \
                 FROM twitter t WHERE t.followers > 50 GROUP BY t.city",
                "SELECT l.category AS cat, COUNT(*) AS n \
                 FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
                 WHERE f.likes > 1 GROUP BY l.category",
                "SELECT b.city AS city, MAX(b.buzz) AS peak \
                 FROM APPLY(buzz_score, twitter) b WHERE b.buzz > 0.1 GROUP BY b.city",
                "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood \
                 FROM twitter t WHERE t.followers > 50 GROUP BY t.city \
                 ORDER BY mood DESC LIMIT 3",
            ]
            .iter()
            .enumerate()
            .map(|(i, sql)| (format!("q{i}"), miso::lang::compile(sql, &catalog).unwrap()))
            .collect();
            let mut sys = system(&corpus);
            let clean = sys.run_workload(Variant::MsMiso, &queries).unwrap();
            let rows = clean.records.iter().map(|r| r.result_rows).collect();
            (corpus, queries, rows)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn any_crash_point_recovers(seed in any::<u64>(), step in 1u64..48) {
            let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            let (corpus, queries, clean_rows) = baseline();
            miso::chaos::install(FaultPlan::seeded(seed).with_rule(FaultRule::new(
                "reorg.step",
                FaultKind::Crash,
                Trigger::OnHit(step),
            )));
            let mut sys = system(corpus);
            let result = sys.run_workload(Variant::MsMiso, queries);
            miso::chaos::disable();
            let faulted = result.expect("crash mid-reorg leaked to the caller");
            let rows: Vec<u64> = faulted.records.iter().map(|r| r.result_rows).collect();
            prop_assert_eq!(&rows, clean_rows, "crash at step {} changed answers", step);
            for name in sys.catalog.names() {
                prop_assert!(
                    sys.hv.has_view(&name) || sys.dw.has_view(&name),
                    "view `{}` lost from both stores", name
                );
            }
            prop_assert!(sys.dw.total_view_bytes() <= budgets().dw_storage);
        }
    }
}

// ---- Deterministic RNG -----------------------------------------------------

proptest! {
    #[test]
    fn det_rng_streams_replay(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn det_rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}
