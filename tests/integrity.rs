//! Integrity integration tests: silent corruption of stored view content
//! must be detected, quarantined, re-planned around, and eventually
//! repaired — without ever changing a query answer.
//!
//! The chaos registry and the verify-on-read switch are process-global, so
//! every test serializes on `INTEGRITY_LOCK` and restores both before
//! releasing it (including on panic, via `IntegrityGuard`).

use std::sync::Mutex;

use miso::chaos::{FaultKind, FaultPlan, FaultRule, Trigger};
use miso::common::{Budgets, ByteSize};
use miso::core::{AuditConfig, ExperimentResult, MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::lang::compile;
use miso::plan::LogicalPlan;
use miso::workload::{standard_udfs, workload_catalog};

static INTEGRITY_LOCK: Mutex<()> = Mutex::new(());

/// Restores the global integrity/chaos switches when dropped, so a
/// panicking test cannot leak state into the next one.
struct IntegrityGuard;

impl Drop for IntegrityGuard {
    fn drop(&mut self) {
        miso::chaos::disable();
        miso::common::integrity::set_verify_on_read(false);
    }
}

fn obs() {
    // Counters must flow for the assertions below; init is idempotent.
    miso_obs::init(miso_obs::ObsConfig::ring(4096));
    miso_obs::reset_metrics();
}

fn counter(name: &str) -> u64 {
    miso_obs::snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

fn tiny_corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system(corpus: &Corpus) -> MultistoreSystem {
    MultistoreSystem::new(
        corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    )
}

/// The same evolving stream the chaos tests drive — enough reuse to
/// harvest views, split plans, and trigger reorganizations.
fn stream() -> Vec<(String, LogicalPlan)> {
    let catalog = workload_catalog();
    [
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city HAVING COUNT(*) > 2 ORDER BY n DESC",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category",
        "SELECT b.city AS city, MAX(b.buzz) AS peak FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.1 GROUP BY b.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city ORDER BY mood DESC LIMIT 3",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category ORDER BY n DESC",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &catalog).unwrap()))
    .collect()
}

fn result_rows(result: &ExperimentResult) -> Vec<u64> {
    result.records.iter().map(|r| r.result_rows).collect()
}

/// Quarantine-aware design consistency: every non-quarantined catalog view
/// resident somewhere, quarantined views resident nowhere, B_d holds.
fn assert_design_consistent(sys: &MultistoreSystem, context: &str) {
    for name in sys.catalog.names() {
        let resident = sys.hv.has_view(&name) || sys.dw.has_view(&name);
        if sys.catalog.is_quarantined(&name) {
            assert!(
                !resident,
                "{context}: quarantined view `{name}` still resident"
            );
        } else {
            assert!(
                resident,
                "{context}: catalog view `{name}` lost from both stores"
            );
        }
    }
    assert!(
        sys.dw.total_view_bytes() <= budgets().dw_storage,
        "{context}: DW design exceeds B_d"
    );
}

/// Corrupts one resident catalog view (deterministically the first in
/// sorted order) in whichever store holds it; returns its name.
fn corrupt_one_view(sys: &mut MultistoreSystem) -> String {
    for name in sys.catalog.names() {
        if sys.hv.has_view(&name) {
            assert!(sys.hv.corrupt_view(&name));
            return name;
        }
        if sys.dw.has_view(&name) {
            assert!(sys.dw.corrupt_view(&name));
            return name;
        }
    }
    panic!("no resident catalog view to corrupt");
}

#[test]
fn checksums_are_stable_across_system_instances() {
    let _lock = INTEGRITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IntegrityGuard;
    miso::chaos::disable();

    let corpus = tiny_corpus();
    let queries = stream();
    let catalog_sums = |sys: &MultistoreSystem| -> Vec<(String, Option<u64>)> {
        sys.catalog
            .names()
            .into_iter()
            .map(|n| {
                let c = sys.catalog.get(&n).unwrap().checksum.map(|c| c.0);
                (n, c)
            })
            .collect()
    };
    let mut a = system(&corpus);
    a.run_workload(Variant::HvOp, &queries).unwrap();
    let mut b = system(&corpus);
    b.run_workload(Variant::HvOp, &queries).unwrap();
    let sums_a = catalog_sums(&a);
    assert!(!sums_a.is_empty(), "HV-OP must harvest views");
    assert!(
        sums_a.iter().all(|(_, c)| c.is_some()),
        "every harvested view carries a materialization checksum"
    );
    assert_eq!(
        sums_a,
        catalog_sums(&b),
        "checksums must be deterministic across system instances"
    );
    // And the stored copies agree with the catalog's record.
    for (name, sum) in sums_a {
        let expected = miso::data::Checksum(sum.unwrap());
        assert_eq!(
            a.hv.verify_view(&name, expected),
            Some(true),
            "stored copy of `{name}` disagrees with its catalog checksum"
        );
    }
}

#[test]
fn injected_read_corruption_never_changes_answers() {
    let _lock = INTEGRITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IntegrityGuard;
    miso::chaos::disable();
    obs();

    let corpus = tiny_corpus();
    let queries = stream();
    let clean = {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap()
    };
    assert_eq!(
        counter("integrity.checksum_failures"),
        0,
        "clean run must not report corruption"
    );

    miso::common::integrity::set_verify_on_read(true);
    miso::chaos::install(
        FaultPlan::seeded(23)
            .with_rule(FaultRule::new(
                "hv.view_read",
                FaultKind::Corrupt,
                Trigger::Prob(0.4),
            ))
            .with_rule(FaultRule::new(
                "dw.view_read",
                FaultKind::Corrupt,
                Trigger::Prob(0.4),
            )),
    );
    let mut sys = system(&corpus);
    let faulted = sys
        .run_workload(Variant::MsMiso, &queries)
        .expect("corruption must be quarantined, not fatal");
    miso::chaos::disable();
    miso::common::integrity::set_verify_on_read(false);

    assert_eq!(
        result_rows(&clean),
        result_rows(&faulted),
        "served answers diverged under read corruption"
    );
    assert!(
        counter("chaos.corruptions_injected") > 0,
        "the corruption points were never exercised"
    );
    assert!(
        counter("integrity.checksum_failures") > 0,
        "injected corruption went undetected"
    );
    assert_eq!(
        counter("integrity.checksum_failures"),
        counter("integrity.quarantined"),
        "every read-time failure must quarantine its view"
    );
    assert!(
        counter("query.view_fallback") > 0,
        "quarantine must force a re-plan"
    );
    assert_design_consistent(&sys, "read corruption");
}

#[test]
fn quarantine_repair_serve_survives_crash_mid_reorg() {
    let _lock = INTEGRITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IntegrityGuard;
    miso::chaos::disable();
    obs();

    let corpus = tiny_corpus();
    let queries = stream();
    // Baseline: the same two-phase protocol, fault-free.
    let baseline = {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap();
        sys.run_workload(Variant::MsMiso, &queries).unwrap()
    };
    let baseline_rows = result_rows(&baseline);

    miso::common::integrity::set_verify_on_read(true);
    let audit = AuditConfig::counting(ByteSize::from_mib(64));
    let mut steps_swept = 0u64;
    for step in 1..=64u64 {
        // Phase 1: populate views, then corrupt one and let the auditor
        // quarantine it.
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap();
        // Corrupt a DW-resident view: its subplan is hot enough that the
        // replay rematerializes it, exercising repair rather than drop.
        let victim = sys
            .catalog
            .names()
            .into_iter()
            .find(|n| sys.dw.has_view(n))
            .expect("MS-MISO keeps views in DW");
        assert!(sys.dw.corrupt_view(&victim));
        let report = sys.audit_pass(&audit).unwrap();
        assert_eq!(
            report.quarantined,
            vec![victim.clone()],
            "scrub must quarantine exactly the corrupted view"
        );

        // Phase 2: re-run the stream with a crash injected at reorg step
        // `step` while the repair is pending.
        miso::chaos::install(FaultPlan::seeded(step).with_rule(FaultRule::new(
            "reorg.step",
            FaultKind::Crash,
            Trigger::OnHit(step),
        )));
        let replay = sys
            .run_workload(Variant::MsMiso, &queries)
            .unwrap_or_else(|e| panic!("crash at reorg step {step} leaked: {e}"));
        let hits = miso::chaos::hit_count("reorg.step");
        miso::chaos::disable();

        assert_eq!(
            baseline_rows,
            result_rows(&replay),
            "crash at reorg step {step} with a pending repair changed answers"
        );
        assert_design_consistent(&sys, &format!("crash at reorg step {step}"));
        assert!(
            sys.catalog.quarantined_names().is_empty(),
            "crash at reorg step {step}: quarantine never resolved (repair or drop)"
        );
        if hits < step {
            // The crash never fired: the sweep has covered every step.
            break;
        }
        steps_swept = step;
    }
    miso::common::integrity::set_verify_on_read(false);

    assert!(
        steps_swept >= 3,
        "stream produced too few reorg steps to sweep ({steps_swept})"
    );
    assert!(
        counter("integrity.repaired") > 0,
        "the sweep never exercised a repair"
    );
}

#[test]
fn tuner_drops_quarantined_views_not_worth_recomputing() {
    let _lock = INTEGRITY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = IntegrityGuard;
    miso::chaos::disable();
    obs();

    let corpus = tiny_corpus();
    let catalog = workload_catalog();
    let mut sys = system(&corpus);
    sys.run_workload(Variant::MsMiso, &stream()).unwrap();
    let victim = corrupt_one_view(&mut sys);
    sys.audit_pass(&AuditConfig::counting(ByteSize::from_mib(64)))
        .unwrap();
    assert!(sys.catalog.is_quarantined(&victim));

    // A follow-up stream of unrelated queries: the tuner window gives the
    // quarantined view no benefit, so the next reorganization drops it
    // rather than paying its recompute cost.
    let unrelated = compile(
        "SELECT COUNT(*) AS n FROM landmarks l WHERE l.rating > 0.0",
        &catalog,
    )
    .unwrap();
    let follow_up: Vec<_> = (0..4)
        .map(|i| (format!("u{i}"), unrelated.clone()))
        .collect();
    sys.run_workload(Variant::MsMiso, &follow_up).unwrap();

    assert!(
        !sys.catalog.contains(&victim),
        "worthless quarantined view must be dropped from the catalog"
    );
    assert!(!sys.hv.has_view(&victim) && !sys.dw.has_view(&victim));
    assert_design_consistent(&sys, "tuner drop");
}
