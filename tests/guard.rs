//! Guard integration tests: cooperative cancellation, deadlines, memory
//! budgets, admission control, and overload shedding.
//!
//! Two layers are covered. Engine-level tests drive
//! [`miso::exec::execute_subset_guarded`] directly and pin down the
//! determinism contract: a guard trip is a *value*, decided only at serial
//! points, so the outcome (success or exact error kind) is invariant under
//! the worker count. System-level tests drive [`MultistoreSystem`] streams
//! and pin down the control plane: every lost query is classified, shed
//! queries carry a `retry_after` hint, and a killed query never
//! half-publishes catalog or view state.

use std::collections::HashMap;

use miso::common::{pool, Budgets, ByteSize, MisoError, QueryGuard, SimDuration};
use miso::core::{ExperimentResult, GuardConfig, MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::data::{DataType, Field, Row, Schema, Value};
use miso::exec::{
    execute_serial, execute_subset_guarded, ExecOptions, Execution, MemSource, UdfRegistry,
};
use miso::lang::compile;
use miso::plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};
use miso::workload::{standard_udfs, workload_catalog};

// ---------------------------------------------------------------------------
// Engine level
// ---------------------------------------------------------------------------

fn int_field(name: &str) -> Field {
    Field::new(name, DataType::Int)
}

/// ScanView ×2 → Join → Project → Aggregate over enough rows to span
/// several morsels: every charged structure (join build, accumulator
/// table) and every per-node check fires at least once.
fn join_agg_fixture() -> (LogicalPlan, MemSource) {
    let mut src = MemSource::new();
    src.add_view(
        "facts",
        (0..10_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 500),
                    Value::Int((i * 31) % 1000),
                    Value::Float((i % 777) as f64 * 0.5),
                ])
            })
            .collect(),
    );
    src.add_view(
        "dims",
        (0..500)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(format!("seg-{:02}", i % 40)),
                ])
            })
            .collect(),
    );
    let mut b = PlanBuilder::new();
    let facts = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: Schema::new(vec![
                    int_field("uid"),
                    int_field("val"),
                    Field::new("score", DataType::Float),
                ]),
            },
            vec![],
        )
        .unwrap();
    let dims = b
        .add(
            Operator::ScanView {
                view: "dims".into(),
                schema: Schema::new(vec![int_field("uid"), Field::new("seg", DataType::Str)]),
            },
            vec![],
        )
        .unwrap();
    let join = b
        .add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dims])
        .unwrap();
    let proj = b
        .add(
            Operator::Project {
                exprs: vec![("seg".into(), Expr::col(4)), ("val".into(), Expr::col(1))],
            },
            vec![join],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: vec![
                    AggExpr::new(AggFunc::Count, None, "n"),
                    AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                ],
            },
            vec![proj],
        )
        .unwrap();
    let filt = b
        .add(
            Operator::Filter {
                predicate: Expr::Binary {
                    op: BinOp::Lt,
                    left: Box::new(Expr::col(1)),
                    right: Box::new(Expr::lit(1_000_000i64)),
                },
            },
            vec![agg],
        )
        .unwrap();
    (b.finish(filt).unwrap(), src)
}

fn run_guarded(
    plan: &LogicalPlan,
    src: &MemSource,
    guard: &QueryGuard,
) -> miso::common::Result<Execution> {
    execute_subset_guarded(
        plan,
        None,
        HashMap::new(),
        src,
        &UdfRegistry::new(),
        ExecOptions {
            retain_root_only: false,
            ..ExecOptions::default()
        },
        guard,
    )
}

/// The observable outcome of a guarded run: the root rows on success, the
/// stable error kind on a kill. This is the value that must not depend on
/// the thread count.
fn outcome(
    plan: &LogicalPlan,
    src: &MemSource,
    guard: &QueryGuard,
) -> std::result::Result<Vec<Row>, &'static str> {
    match run_guarded(plan, src, guard) {
        Ok(exec) => Ok(exec.root_rows().unwrap().to_vec()),
        Err(e) => Err(e.kind()),
    }
}

/// An inert guard is a no-op: the guarded entry point returns exactly what
/// the preserved serial interpreter returns, node for node.
#[test]
fn inert_guard_matches_serial_oracle() {
    let (plan, src) = join_agg_fixture();
    let udfs = UdfRegistry::new();
    let serial = execute_serial(&plan, &src, &udfs).unwrap();
    let guarded = run_guarded(&plan, &src, QueryGuard::inert_ref()).unwrap();
    let mut ids: Vec<_> = serial.executed_nodes().collect();
    ids.sort_unstable();
    for id in ids {
        assert_eq!(serial.try_output(id), guarded.try_output(id), "node {id}");
    }
}

/// A live guard that never trips (no deadline, unlimited budget) must also
/// leave the answer untouched — and every charge it took must have been
/// released by the time the execution is returned.
#[test]
fn non_tripping_guard_is_transparent_and_releases_charges() {
    let (plan, src) = join_agg_fixture();
    let udfs = UdfRegistry::new();
    let serial = execute_serial(&plan, &src, &udfs).unwrap();
    let guard = QueryGuard::new(None, 0);
    let guarded = run_guarded(&plan, &src, &guard).unwrap();
    assert_eq!(
        serial.root_rows().unwrap(),
        guarded.root_rows().unwrap(),
        "guard charging must not change the answer"
    );
    assert!(guard.peak() > 0, "join/agg structures must be charged");
    assert_eq!(guard.used(), 0, "all charges released on completion");
}

/// Cancellation lands at a deterministic point: for any check budget `n`,
/// the outcome — completion or the exact error kind — is identical at 1, 2
/// and 8 workers.
#[test]
fn cancellation_outcome_is_thread_count_invariant() {
    let (plan, src) = join_agg_fixture();
    let before = pool::threads();
    for n in [1u64, 2, 3, 5, 8, 13, 21, 34, 55] {
        let mut outcomes = Vec::new();
        for t in [1usize, 2, 8] {
            pool::set_threads(t);
            let guard = QueryGuard::new(None, 0);
            guard.cancel_after_checks(n);
            outcomes.push((t, outcome(&plan, &src, &guard)));
        }
        let (_, first) = &outcomes[0];
        for (t, o) in &outcomes {
            assert_eq!(
                o, first,
                "cancel after {n} checks: outcome diverged at {t} threads"
            );
        }
    }
    pool::set_threads(before);
}

/// Sweeps the cancellation point across *every* check the plan performs:
/// each mid-flight kill reports `cancelled` (never a wrong answer, never a
/// panic), and once the budget of checks exceeds what the plan needs, the
/// run completes with the oracle's rows.
#[test]
fn cancel_at_every_check_reports_cancelled_then_completes() {
    let (plan, src) = join_agg_fixture();
    let udfs = UdfRegistry::new();
    let clean = execute_serial(&plan, &src, &udfs).unwrap();
    let clean_rows = clean.root_rows().unwrap();
    let mut kills = 0usize;
    let mut completed = false;
    for n in 1..10_000u64 {
        let guard = QueryGuard::new(None, 0);
        guard.cancel_after_checks(n);
        match run_guarded(&plan, &src, &guard) {
            Ok(exec) => {
                assert_eq!(exec.root_rows().unwrap(), clean_rows);
                completed = true;
                break;
            }
            Err(e) => {
                assert_eq!(e.kind(), "cancelled", "unexpected kill: {e}");
                assert!(guard.is_cancelled());
                kills += 1;
            }
        }
    }
    assert!(completed, "plan never completed within the sweep bound");
    assert!(kills > 3, "sweep should cross several check points");
}

/// An explicitly cancelled guard kills the query before any operator runs.
#[test]
fn pre_cancelled_guard_refuses_to_run() {
    let (plan, src) = join_agg_fixture();
    let guard = QueryGuard::new(None, 0);
    guard.cancel();
    let err = run_guarded(&plan, &src, &guard).unwrap_err();
    assert_eq!(err.kind(), "cancelled");
    assert!(matches!(err, MisoError::Cancelled { .. }));
}

/// A budget smaller than the join build table kills the query with
/// `resource_exhausted`, and the refused charge is never recorded: the
/// recorded peak stays at or under the budget.
#[test]
fn tiny_memory_budget_trips_resource_exhausted() {
    let (plan, src) = join_agg_fixture();
    let budget = 4 * 1024; // join build alone needs ~500 rows × 28 B
    let guard = QueryGuard::new(None, budget);
    let err = run_guarded(&plan, &src, &guard).unwrap_err();
    assert_eq!(err.kind(), "resource_exhausted");
    assert!(matches!(err, MisoError::ResourceExhausted { .. }));
    assert!(
        guard.peak() <= budget,
        "refused charges must not be recorded: peak {} > budget {budget}",
        guard.peak()
    );
}

// ---------------------------------------------------------------------------
// System level
// ---------------------------------------------------------------------------

fn tiny_corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system_with_guard(corpus: &Corpus, guard: GuardConfig) -> MultistoreSystem {
    let mut config = SystemConfig::paper_default(budgets());
    config.guard = guard;
    MultistoreSystem::new(corpus, workload_catalog(), standard_udfs(), config)
}

/// The same evolving stream the chaos tests drive.
fn stream() -> Vec<(String, LogicalPlan)> {
    let catalog = workload_catalog();
    [
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city HAVING COUNT(*) > 2 ORDER BY n DESC",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category",
        "SELECT b.city AS city, MAX(b.buzz) AS peak FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.1 GROUP BY b.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city ORDER BY mood DESC LIMIT 3",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category ORDER BY n DESC",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &catalog).unwrap()))
    .collect()
}

fn result_rows(result: &ExperimentResult) -> Vec<u64> {
    result.records.iter().map(|r| r.result_rows).collect()
}

/// An observe-only guard (enabled, but no deadline, unlimited budget,
/// unbounded admission) must be invisible: identical rows and identical
/// simulated time to a guards-off run.
#[test]
fn observe_only_guard_changes_nothing() {
    let corpus = tiny_corpus();
    let queries = stream();
    let off = system_with_guard(&corpus, GuardConfig::disabled())
        .run_workload(Variant::MsMiso, &queries)
        .unwrap();
    let on = system_with_guard(
        &corpus,
        GuardConfig {
            enabled: true,
            ..GuardConfig::disabled()
        },
    )
    .run_workload(Variant::MsMiso, &queries)
    .unwrap();
    assert!(on.failures.is_empty(), "observe-only guards kill nothing");
    assert_eq!(result_rows(&off), result_rows(&on));
    assert_eq!(off.tti_total(), on.tti_total(), "guards must not add cost");
}

/// A zero deadline kills every admitted query at its first store call, the
/// overload breaker then opens and sheds the tail — and through all of it
/// the stream keeps running, every loss is classified, and no killed query
/// leaves a view behind.
#[test]
fn zero_deadline_kills_are_classified_and_publish_nothing() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut sys = system_with_guard(
        &corpus,
        GuardConfig {
            enabled: true,
            deadline: Some(SimDuration::ZERO),
            shed_threshold: 3,
            shed_cooldown: SimDuration::from_secs(1_000_000),
            ..GuardConfig::disabled()
        },
    );
    let views_before: Vec<String> = sys.catalog.names();
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();

    assert!(result.records.is_empty(), "nothing outruns a zero deadline");
    assert_eq!(
        result.failures.len(),
        queries.len(),
        "every query must be accounted for"
    );
    let killed: Vec<_> = result.failures.iter().filter(|f| !f.shed).collect();
    let shed: Vec<_> = result.failures.iter().filter(|f| f.shed).collect();
    assert_eq!(killed.len(), 3, "breaker opens after shed_threshold kills");
    assert_eq!(shed.len(), queries.len() - 3, "the tail is shed");
    for f in killed {
        assert_eq!(f.kind, "cancelled", "deadline kills report `cancelled`");
        assert!(f.retry_after.is_none());
    }
    for f in shed {
        assert_eq!(f.kind, "resource_exhausted");
        assert!(f.retry_after.is_some(), "shed queries get a retry hint");
    }
    // No half-publish: killed queries must not have grown the catalog, and
    // the DW staging area must be clean.
    assert_eq!(
        sys.catalog.names(),
        views_before,
        "killed queries must not publish views"
    );
    assert!(
        sys.dw.total_view_bytes() <= budgets().dw_storage,
        "DW design within budget after kills"
    );
}

/// `max_inflight: 0` is drain mode: everything is shed at admission with a
/// `retry_after` hint, nothing executes, the process stays healthy.
#[test]
fn zero_inflight_sheds_everything_at_admission() {
    let corpus = tiny_corpus();
    let queries = stream();
    let mut sys = system_with_guard(
        &corpus,
        GuardConfig {
            enabled: true,
            max_inflight: 0,
            ..GuardConfig::disabled()
        },
    );
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert!(result.records.is_empty());
    assert_eq!(result.failures.len(), queries.len());
    for f in &result.failures {
        assert!(f.shed, "admission-capacity losses are sheds");
        assert_eq!(f.kind, "resource_exhausted");
        assert_eq!(
            f.retry_after,
            Some(GuardConfig::disabled().shed_cooldown),
            "retry hint is the configured cooldown"
        );
    }
}

/// Deadlines generous enough for the whole stream change nothing: same
/// rows as guards-off, zero failures — the guard layer only ever *removes*
/// queries, it never perturbs the ones it admits.
#[test]
fn generous_deadline_admits_everything_unchanged() {
    let corpus = tiny_corpus();
    let queries = stream();
    let off = system_with_guard(&corpus, GuardConfig::disabled())
        .run_workload(Variant::MsMiso, &queries)
        .unwrap();
    let guarded = system_with_guard(
        &corpus,
        GuardConfig {
            enabled: true,
            deadline: Some(SimDuration::from_secs(u64::MAX / 1_000_000 / 2)),
            mem_budget: ByteSize::from_mib(512),
            max_inflight: 1,
            ..GuardConfig::disabled()
        },
    )
    .run_workload(Variant::MsMiso, &queries)
    .unwrap();
    assert!(guarded.failures.is_empty());
    assert_eq!(result_rows(&off), result_rows(&guarded));
    assert_eq!(off.tti_total(), guarded.tti_total());
}
