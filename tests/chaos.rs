//! Chaos integration tests: fault injection at the engine's fail points
//! must never produce wrong answers, lose views, or violate budgets.
//!
//! The chaos registry is process-global, so every test serializes on
//! `CHAOS_LOCK` and disables injection before releasing it (including on
//! panic, via `ChaosGuard`).

use std::sync::Mutex;

use miso::chaos::{FaultKind, FaultPlan, FaultRule, Trigger};
use miso::common::{Budgets, ByteSize};
use miso::core::{ExperimentResult, MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::lang::compile;
use miso::plan::LogicalPlan;
use miso::workload::{standard_udfs, workload_catalog};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Disables injection when dropped, so a panicking test cannot leak an
/// installed fault plan into the next one.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        miso::chaos::disable();
    }
}

fn tiny_corpus() -> Corpus {
    Corpus::generate(&LogsConfig::tiny())
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(32),
        ByteSize::from_mib(4),
        ByteSize::from_mib(2),
    )
    .with_discretization(ByteSize::from_kib(16))
}

fn system(corpus: &Corpus) -> MultistoreSystem {
    MultistoreSystem::new(
        corpus,
        workload_catalog(),
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    )
}

/// The same evolving stream the end-to-end tests drive: joins, UDFs,
/// refinement, drift — enough to trigger split plans and reorganizations.
fn stream() -> Vec<(String, LogicalPlan)> {
    let catalog = workload_catalog();
    [
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city HAVING COUNT(*) > 2 ORDER BY n DESC",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category",
        "SELECT b.city AS city, MAX(b.buzz) AS peak FROM APPLY(buzz_score, twitter) b \
         WHERE b.buzz > 0.1 GROUP BY b.city",
        "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood FROM twitter t \
         WHERE t.followers > 50 GROUP BY t.city ORDER BY mood DESC LIMIT 3",
        "SELECT l.category AS cat, COUNT(*) AS n \
         FROM foursquare f JOIN landmarks l ON f.venue_id = l.venue_id \
         WHERE f.likes > 1 GROUP BY l.category ORDER BY n DESC",
    ]
    .iter()
    .enumerate()
    .map(|(i, sql)| (format!("q{i}"), compile(sql, &catalog).unwrap()))
    .collect()
}

fn result_rows(result: &ExperimentResult) -> Vec<u64> {
    result.records.iter().map(|r| r.result_rows).collect()
}

/// Every catalog view must be resident in at least one store, and the DW
/// design must fit its storage budget — chaos or not.
fn assert_design_consistent(sys: &MultistoreSystem, context: &str) {
    for name in sys.catalog.names() {
        assert!(
            sys.hv.has_view(&name) || sys.dw.has_view(&name),
            "{context}: catalog view `{name}` lost from both stores"
        );
    }
    assert!(
        sys.dw.total_view_bytes() <= budgets().dw_storage,
        "{context}: DW design exceeds B_d: {}",
        sys.dw.total_view_bytes()
    );
}

#[test]
fn chaos_disabled_runs_are_deterministic() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();

    let corpus = tiny_corpus();
    let queries = stream();
    let run = || {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(result_rows(&a), result_rows(&b));
    assert_eq!(
        a.tti_total(),
        b.tti_total(),
        "fault-free runs must be byte-identical"
    );
    assert!(
        a.reorgs.iter().all(|r| r.recoveries == 0 && !r.rolled_back),
        "no recoveries without injected crashes"
    );
}

#[test]
fn hard_dw_outage_degrades_to_hv_with_correct_answers() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();

    let corpus = tiny_corpus();
    let queries = stream();
    let clean = {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap()
    };

    // DW and the transfer path are down for the whole run.
    miso::chaos::install(
        FaultPlan::seeded(7)
            .with_rule(FaultRule::new(
                "dw.execute",
                FaultKind::Error,
                Trigger::Always,
            ))
            .with_rule(FaultRule::new(
                "transfer.ship",
                FaultKind::Error,
                Trigger::Always,
            )),
    );
    let mut sys = system(&corpus);
    let faulted = sys
        .run_workload(Variant::MsMiso, &queries)
        .expect("queries must fall back to HV, not error out");
    let attempts = miso::chaos::hit_count("dw.execute") + miso::chaos::hit_count("transfer.ship");
    miso::chaos::disable();

    assert!(attempts > 0, "the outage was never exercised");
    assert_eq!(
        result_rows(&clean),
        result_rows(&faulted),
        "degraded execution changed query answers"
    );
    assert!(
        faulted.tti_total() >= clean.tti_total(),
        "retries and fallbacks cannot make the stream faster"
    );
    assert_design_consistent(&sys, "hard DW outage");
}

#[test]
fn reorg_crash_at_every_step_is_recoverable() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();

    let corpus = tiny_corpus();
    let queries = stream();
    let clean = {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::MsMiso, &queries).unwrap()
    };
    let clean_rows = result_rows(&clean);

    let mut saw_rollback = false;
    let mut saw_replay = false;
    let mut steps_swept = 0u64;
    for step in 1..=512u64 {
        miso::chaos::install(FaultPlan::seeded(step).with_rule(FaultRule::new(
            "reorg.step",
            FaultKind::Crash,
            Trigger::OnHit(step),
        )));
        let mut sys = system(&corpus);
        let faulted = sys
            .run_workload(Variant::MsMiso, &queries)
            .unwrap_or_else(|e| panic!("crash at reorg step {step} leaked: {e}"));
        let hits = miso::chaos::hit_count("reorg.step");
        miso::chaos::disable();

        if hits < step {
            // Fewer total steps than `step`: the crash never fired and the
            // sweep has covered every crash point.
            break;
        }
        steps_swept = step;
        assert_eq!(
            clean_rows,
            result_rows(&faulted),
            "crash at reorg step {step} changed query answers"
        );
        assert_design_consistent(&sys, &format!("crash at reorg step {step}"));
        for reorg in &faulted.reorgs {
            if reorg.rolled_back {
                saw_rollback = true;
                assert!(
                    reorg.moved_to_dw.is_empty() && reorg.moved_to_hv.is_empty(),
                    "a rolled-back reorg must not move views"
                );
            } else if reorg.recoveries > 0 {
                saw_replay = true;
            }
        }
    }

    assert!(
        steps_swept >= 3,
        "stream produced too few reorg steps to sweep"
    );
    assert!(saw_rollback, "sweep never exercised a pre-commit rollback");
    assert!(saw_replay, "sweep never exercised a post-commit replay");
}

#[test]
fn etl_retries_transient_failures_transparently() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();

    let corpus = tiny_corpus();
    let queries = stream();
    let clean = {
        let mut sys = system(&corpus);
        sys.run_workload(Variant::DwOnly, &queries).unwrap()
    };

    // The first two ETL jobs fail once each before succeeding on retry.
    miso::chaos::install(FaultPlan::seeded(11).with_rule(FaultRule::new(
        "etl.run",
        FaultKind::Error,
        Trigger::UpTo(2),
    )));
    let mut sys = system(&corpus);
    let faulted = sys
        .run_workload(Variant::DwOnly, &queries)
        .expect("transient ETL failures must be retried, not fatal");
    let hits = miso::chaos::hit_count("etl.run");
    miso::chaos::disable();

    assert!(hits >= 2, "the ETL fail point was never exercised");
    assert_eq!(result_rows(&clean), result_rows(&faulted));
    assert!(
        faulted.tti.etl > clean.tti.etl,
        "retry backoff must be charged to the ETL bucket"
    );
    assert_eq!(
        clean.tti.dw_exe, faulted.tti.dw_exe,
        "retries only touch ETL"
    );
}
