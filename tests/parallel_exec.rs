//! Determinism tests for the miso-vex morsel-parallel execution engine.
//!
//! The contract under test: the worker count is a pure performance lever.
//! Every retained node output — not just the root — must be byte-identical
//! for `MISO_THREADS` ∈ {1, 2, 8}, and identical to the preserved seed
//! row-at-a-time interpreter ([`miso::exec::execute_serial`]), across every
//! operator: scans (including malformed-line skipping), filter, project,
//! join (including NULL-key semantics), aggregate (every accumulator
//! variant), UDFs, sort (including ties), and limit.

use miso::common::pool;
use miso::data::{DataType, Field, Row, Schema, Value};
use miso::exec::engine::execute;
use miso::exec::{execute_serial, Execution, MemSource, Udf, UdfRegistry};
use miso::plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan, Operator, PlanBuilder};
use std::sync::Arc;

/// Asserts two executions retained the same nodes with identical rows and
/// identical skip accounting.
fn assert_executions_eq(a: &Execution, b: &Execution, what: &str) {
    assert_eq!(a.skipped_lines, b.skipped_lines, "{what}: skipped_lines");
    let mut ids_a: Vec<_> = a.executed_nodes().collect();
    ids_a.sort_unstable();
    let mut ids_b: Vec<_> = b.executed_nodes().collect();
    ids_b.sort_unstable();
    assert_eq!(ids_a, ids_b, "{what}: executed node sets");
    for id in ids_a {
        assert_eq!(a.try_output(id), b.try_output(id), "{what}: node {id}");
        assert_eq!(a.rows_out(id), b.rows_out(id), "{what}: rows_out {id}");
    }
}

/// Runs a plan serially and under the vex engine at 1, 2 and 8 workers,
/// asserting all four executions are byte-identical.
fn assert_thread_invariant(plan: &LogicalPlan, src: &MemSource, udfs: &UdfRegistry, what: &str) {
    let before = pool::threads();
    pool::set_threads(1);
    let serial = execute_serial(plan, src, udfs).expect("serial run succeeds");
    for t in [1usize, 2, 8] {
        pool::set_threads(t);
        let vex = execute(plan, src, udfs).expect("vex run succeeds");
        assert_executions_eq(&serial, &vex, &format!("{what} @ {t} threads"));
    }
    pool::set_threads(before);
}

fn int_field(name: &str) -> Field {
    Field::new(name, DataType::Int)
}

/// ScanLog (with malformed lines) → UDF (filters + reshapes) → Filter →
/// Sort → Limit: the log-side operator chain, spanning several morsels.
#[test]
fn log_pipeline_is_thread_invariant() {
    let mut lines = Vec::new();
    for i in 0..20_000u64 {
        if i % 61 == 17 {
            lines.push(format!("not json #{i}"));
        } else {
            lines.push(format!(
                r#"{{"uid": {}, "score": {}}}"#,
                i % 900,
                (i * 13) % 500
            ));
        }
    }
    let mut src = MemSource::new();
    src.add_log("events", lines);

    let mut udfs = UdfRegistry::new();
    let udf_schema = Schema::new(vec![int_field("uid"), int_field("score")]);
    udfs.register(Udf::new(
        "uid_score",
        udf_schema.clone(),
        Arc::new(|row: &Row| {
            let rec = row.get(0);
            match (
                rec.get_field("uid").and_then(Value::as_i64),
                rec.get_field("score").and_then(Value::as_i64),
            ) {
                // Drop a slice of rows so the UDF's 0-or-1 fanout is on show.
                (Some(uid), Some(score)) if uid % 7 != 3 => {
                    Ok(vec![Row::new(vec![Value::Int(uid), Value::Int(score)])])
                }
                _ => Ok(vec![]),
            }
        }),
    ));

    let mut b = PlanBuilder::new();
    let scan = b
        .add(
            Operator::ScanLog {
                log: "events".into(),
            },
            vec![],
        )
        .unwrap();
    let udf = b
        .add(
            Operator::Udf {
                name: "uid_score".into(),
                output: udf_schema,
            },
            vec![scan],
        )
        .unwrap();
    let filt = b
        .add(
            Operator::Filter {
                predicate: Expr::Binary {
                    op: BinOp::Lt,
                    left: Box::new(Expr::col(1)),
                    right: Box::new(Expr::lit(400i64)),
                },
            },
            vec![udf],
        )
        .unwrap();
    // score has heavy ties (500 distinct values over ~16k rows), so the
    // sort exercises the index tiebreak against the serial stable sort.
    let sort = b
        .add(
            Operator::Sort {
                keys: vec![(1, true), (0, false)],
            },
            vec![filt],
        )
        .unwrap();
    let limit = b.add(Operator::Limit { n: 1000 }, vec![sort]).unwrap();
    let plan = b.finish(limit).unwrap();

    assert_thread_invariant(&plan, &src, &udfs, "log pipeline");

    // The malformed-line count itself is part of the contract.
    pool::set_threads(8);
    let vex = execute(&plan, &src, &udfs).unwrap();
    assert_eq!(
        vex.skipped_lines,
        (0..20_000u64).filter(|i| i % 61 == 17).count() as u64
    );
    pool::set_threads(1);
}

/// ScanView ×2 → Join → Project → Aggregate with every accumulator variant
/// (Count, CountDistinct, Sum over ints, Sum over floats, Avg, Min, Max).
#[test]
fn join_aggregate_pipeline_is_thread_invariant() {
    let mut src = MemSource::new();
    src.add_view(
        "facts",
        (0..30_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 1500),
                    Value::Int((i * 31) % 1000),
                    Value::Float((i % 777) as f64 * 0.5),
                ])
            })
            .collect(),
    );
    src.add_view(
        "dims",
        (0..1500)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(format!("seg-{:02}", i % 40)),
                ])
            })
            .collect(),
    );
    let mut b = PlanBuilder::new();
    let facts = b
        .add(
            Operator::ScanView {
                view: "facts".into(),
                schema: Schema::new(vec![
                    int_field("uid"),
                    int_field("val"),
                    Field::new("score", DataType::Float),
                ]),
            },
            vec![],
        )
        .unwrap();
    let dims = b
        .add(
            Operator::ScanView {
                view: "dims".into(),
                schema: Schema::new(vec![int_field("uid"), Field::new("seg", DataType::Str)]),
            },
            vec![],
        )
        .unwrap();
    let join = b
        .add(Operator::Join { on: vec![(0, 0)] }, vec![facts, dims])
        .unwrap();
    let proj = b
        .add(
            Operator::Project {
                exprs: vec![
                    ("seg".into(), Expr::col(4)),
                    ("val".into(), Expr::col(1)),
                    ("score".into(), Expr::col(2)),
                ],
            },
            vec![join],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![0],
                aggs: vec![
                    AggExpr::new(AggFunc::Count, None, "n"),
                    AggExpr::new(AggFunc::CountDistinct, Some(Expr::col(1)), "d"),
                    AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                    AggExpr::new(AggFunc::Sum, Some(Expr::col(2)), "ftotal"),
                    AggExpr::new(AggFunc::Avg, Some(Expr::col(2)), "avg"),
                    AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
                    AggExpr::new(AggFunc::Max, Some(Expr::col(1)), "hi"),
                ],
            },
            vec![proj],
        )
        .unwrap();
    let plan = b.finish(agg).unwrap();
    assert_thread_invariant(&plan, &src, &UdfRegistry::new(), "join+aggregate");
}

/// NULL join keys never match — on either side, at any thread count.
#[test]
fn null_join_keys_never_match() {
    let mut src = MemSource::new();
    src.add_view(
        "left",
        (0..10_000)
            .map(|i| {
                let key = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 100)
                };
                Row::new(vec![key, Value::Int(i)])
            })
            .collect(),
    );
    src.add_view(
        "right",
        (0..100)
            .map(|i| {
                let key = if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                };
                Row::new(vec![key, Value::str(format!("r{i}"))])
            })
            .collect(),
    );
    let schema_l = Schema::new(vec![int_field("k"), int_field("v")]);
    let schema_r = Schema::new(vec![int_field("k"), Field::new("tag", DataType::Str)]);
    let mut b = PlanBuilder::new();
    let l = b
        .add(
            Operator::ScanView {
                view: "left".into(),
                schema: schema_l,
            },
            vec![],
        )
        .unwrap();
    let r = b
        .add(
            Operator::ScanView {
                view: "right".into(),
                schema: schema_r,
            },
            vec![],
        )
        .unwrap();
    let join = b
        .add(Operator::Join { on: vec![(0, 0)] }, vec![l, r])
        .unwrap();
    let plan = b.finish(join).unwrap();
    let udfs = UdfRegistry::new();

    assert_thread_invariant(&plan, &src, &udfs, "null-key join");

    pool::set_threads(8);
    let out = execute(&plan, &src, &udfs).unwrap();
    for row in out.root_rows().unwrap() {
        assert!(!row.get(0).is_null(), "null key leaked into join output");
        assert!(!row.get(2).is_null(), "null key leaked into join output");
    }
    pool::set_threads(1);
}

/// A global (no GROUP BY) aggregate over an empty input still yields one
/// row, identically on every engine.
#[test]
fn empty_global_aggregate_is_thread_invariant() {
    let mut src = MemSource::new();
    src.add_view("empty", Vec::new());
    let mut b = PlanBuilder::new();
    let sv = b
        .add(
            Operator::ScanView {
                view: "empty".into(),
                schema: Schema::new(vec![int_field("v")]),
            },
            vec![],
        )
        .unwrap();
    let agg = b
        .add(
            Operator::Aggregate {
                group_by: vec![],
                aggs: vec![
                    AggExpr::new(AggFunc::Count, None, "n"),
                    AggExpr::new(AggFunc::Sum, Some(Expr::col(0)), "total"),
                    AggExpr::new(AggFunc::Avg, Some(Expr::col(0)), "avg"),
                    AggExpr::new(AggFunc::Min, Some(Expr::col(0)), "lo"),
                ],
            },
            vec![sv],
        )
        .unwrap();
    let plan = b.finish(agg).unwrap();
    assert_thread_invariant(&plan, &src, &UdfRegistry::new(), "empty global aggregate");
}

/// Property tests: the vex engine agrees with the serial oracle on random
/// inputs, shapes and thread counts. Needs the crates.io `proptest` crate;
/// enable the `extern-deps` feature to run.
#[cfg(feature = "extern-deps")]
mod random_plans {
    use super::*;
    use proptest::prelude::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            3 => (-50i64..50).prop_map(Value::Int),
            1 => Just(Value::Null),
            1 => (0i64..8).prop_map(|i| Value::str(format!("s{i}"))),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// ScanView → Filter → Aggregate → Sort over random rows matches
        /// the serial oracle at a random thread count.
        #[test]
        fn random_pipeline_matches_serial(
            rows in proptest::collection::vec((value_strategy(), -100i64..100), 0..600),
            threshold in -100i64..100,
            threads in 1usize..=8,
        ) {
            let mut src = MemSource::new();
            src.add_view(
                "t",
                rows.iter()
                    .map(|(k, v)| Row::new(vec![k.clone(), Value::Int(*v)]))
                    .collect(),
            );
            let mut b = PlanBuilder::new();
            let sv = b
                .add(
                    Operator::ScanView {
                        view: "t".into(),
                        schema: Schema::new(vec![int_field("k"), int_field("v")]),
                    },
                    vec![],
                )
                .unwrap();
            let filt = b
                .add(
                    Operator::Filter {
                        predicate: Expr::Binary {
                            op: BinOp::Lt,
                            left: Box::new(Expr::col(1)),
                            right: Box::new(Expr::lit(threshold)),
                        },
                    },
                    vec![sv],
                )
                .unwrap();
            let agg = b
                .add(
                    Operator::Aggregate {
                        group_by: vec![0],
                        aggs: vec![
                            AggExpr::new(AggFunc::Count, None, "n"),
                            AggExpr::new(AggFunc::Sum, Some(Expr::col(1)), "total"),
                            AggExpr::new(AggFunc::Min, Some(Expr::col(1)), "lo"),
                        ],
                    },
                    vec![filt],
                )
                .unwrap();
            let sort = b
                .add(Operator::Sort { keys: vec![(1, true)] }, vec![agg])
                .unwrap();
            let plan = b.finish(sort).unwrap();
            let udfs = UdfRegistry::new();

            let before = pool::threads();
            pool::set_threads(1);
            let serial = execute_serial(&plan, &src, &udfs).unwrap();
            pool::set_threads(threads);
            let vex = execute(&plan, &src, &udfs).unwrap();
            pool::set_threads(before);
            assert_executions_eq(&serial, &vex, &format!("random plan @ {threads} threads"));
        }

        /// Random join inputs (with NULLs mixed in) match the serial oracle.
        #[test]
        fn random_join_matches_serial(
            left in proptest::collection::vec(value_strategy(), 0..400),
            right in proptest::collection::vec(value_strategy(), 0..100),
            threads in 1usize..=8,
        ) {
            let mut src = MemSource::new();
            src.add_view(
                "l",
                left.iter()
                    .enumerate()
                    .map(|(i, k)| Row::new(vec![k.clone(), Value::Int(i as i64)]))
                    .collect(),
            );
            src.add_view(
                "r",
                right
                    .iter()
                    .enumerate()
                    .map(|(i, k)| Row::new(vec![k.clone(), Value::Int(-(i as i64))]))
                    .collect(),
            );
            let schema = Schema::new(vec![int_field("k"), int_field("v")]);
            let mut b = PlanBuilder::new();
            let l = b
                .add(
                    Operator::ScanView {
                        view: "l".into(),
                        schema: schema.clone(),
                    },
                    vec![],
                )
                .unwrap();
            let r = b
                .add(
                    Operator::ScanView {
                        view: "r".into(),
                        schema,
                    },
                    vec![],
                )
                .unwrap();
            let join = b.add(Operator::Join { on: vec![(0, 0)] }, vec![l, r]).unwrap();
            let plan = b.finish(join).unwrap();
            let udfs = UdfRegistry::new();

            let before = pool::threads();
            pool::set_threads(1);
            let serial = execute_serial(&plan, &src, &udfs).unwrap();
            pool::set_threads(threads);
            let vex = execute(&plan, &src, &udfs).unwrap();
            pool::set_threads(before);
            assert_executions_eq(&serial, &vex, &format!("random join @ {threads} threads"));
        }
    }
}
