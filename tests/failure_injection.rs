//! Failure-injection and edge-condition tests: the system must degrade
//! gracefully, never corrupt results, and report precise errors.
//!
//! Faults with a registry fail point are injected through `miso::chaos`;
//! the remaining tests hand-shape conditions the registry cannot express
//! (malformed input data, missing logs, misconfigured UDFs).

use std::sync::Mutex;

use miso::chaos::{FaultKind, FaultPlan, FaultRule, Trigger};
use miso::common::{Budgets, ByteSize};
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogFile, LogKind, LogsConfig};
use miso::exec::engine::execute;
use miso::exec::MemSource;
use miso::lang::compile;
use miso::workload::{standard_udfs, workload_catalog};

/// The chaos registry and verify-on-read switch are process-global, so
/// the injection tests below serialize on this lock and restore both via
/// `ChaosGuard` (including on panic).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        miso::chaos::disable();
        miso::common::integrity::set_verify_on_read(false);
    }
}

fn budgets() -> Budgets {
    Budgets::new(
        ByteSize::from_mib(16),
        ByteSize::from_mib(2),
        ByteSize::from_mib(1),
    )
    .with_discretization(ByteSize::from_kib(16))
}

#[test]
fn corrupted_log_lines_are_skipped_not_fatal() {
    let mut corpus = Corpus::generate(&LogsConfig::tiny());
    // Corrupt a third of the tweet log in assorted ways.
    let mut lines = corpus.twitter.lines.clone();
    for (i, line) in lines.iter_mut().enumerate() {
        match i % 9 {
            0 => *line = "totally not json".to_string(),
            3 => *line = line[..line.len() / 2].to_string(), // truncated
            6 => line.push_str("}} trailing"),               // trailing garbage
            _ => {}
        }
    }
    let expected_good = lines
        .iter()
        .filter(|l| miso::data::json::parse_json(l).is_ok())
        .count();
    corpus.twitter = LogFile {
        kind: LogKind::Twitter,
        size: corpus.twitter.size,
        lines,
    };

    let catalog = workload_catalog();
    let mut sys = MultistoreSystem::new(
        &corpus,
        catalog.clone(),
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    );
    let q = compile(
        "SELECT COUNT(*) AS n FROM twitter t WHERE t.tweet_id >= 0",
        &catalog,
    )
    .unwrap();
    let result = sys
        .run_workload(Variant::HvOnly, &[("probe".into(), q)])
        .unwrap();
    assert_eq!(result.records[0].result_rows, 1);
    // The count reflects only parseable records.
    assert!(expected_good < corpus.twitter.len());
}

#[test]
fn missing_log_is_a_store_error_not_a_panic() {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let mut catalog = workload_catalog();
    catalog.add_log("instagram", [("user_id", miso::data::DataType::Int)]);
    let q = compile(
        "SELECT i.user_id FROM instagram i WHERE i.user_id > 0",
        &catalog,
    )
    .unwrap();
    let mut sys = MultistoreSystem::new(
        &corpus,
        catalog,
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    );
    let err = sys
        .run_workload(Variant::HvOnly, &[("q".into(), q)])
        .unwrap_err();
    assert_eq!(err.layer(), "store");
    assert!(err.to_string().contains("instagram"));
}

#[test]
fn unknown_udf_at_execution_is_an_error() {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let mut catalog = workload_catalog();
    catalog.add_udf(
        "phantom",
        miso::data::Schema::new(vec![miso::data::Field::new("x", miso::data::DataType::Int)]),
    );
    let q = compile(
        "SELECT p.x FROM APPLY(phantom, twitter) p WHERE p.x > 0",
        &catalog,
    )
    .unwrap();
    // Registry lacks `phantom`.
    let mut sys = MultistoreSystem::new(
        &corpus,
        catalog,
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    );
    let err = sys
        .run_workload(Variant::HvOnly, &[("q".into(), q)])
        .unwrap_err();
    assert!(err.to_string().contains("phantom"), "{err}");
}

#[test]
fn empty_workload_is_a_clean_no_op() {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    for variant in Variant::ALL {
        let mut sys = MultistoreSystem::new(
            &corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets()),
        );
        let result = sys.run_workload(variant, &[]).unwrap();
        assert!(result.records.is_empty(), "{variant}");
        if variant != Variant::DwOnly {
            assert!(
                result.tti_total().is_zero(),
                "{variant}: {}",
                result.tti_total()
            );
        }
    }
}

#[test]
fn queries_over_empty_logs_work() {
    let empty = Corpus {
        twitter: LogFile {
            kind: LogKind::Twitter,
            lines: vec![],
            size: ByteSize::ZERO,
        },
        foursquare: LogFile {
            kind: LogKind::Foursquare,
            lines: vec![],
            size: ByteSize::ZERO,
        },
        landmarks: LogFile {
            kind: LogKind::Landmarks,
            lines: vec![],
            size: ByteSize::ZERO,
        },
    };
    let catalog = workload_catalog();
    let q = compile(
        "SELECT t.city AS c, COUNT(*) AS n FROM twitter t WHERE t.followers > 1 GROUP BY t.city",
        &catalog,
    )
    .unwrap();
    let mut sys = MultistoreSystem::new(
        &empty,
        catalog,
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    );
    let result = sys
        .run_workload(Variant::MsMiso, &[("q".into(), q)])
        .unwrap();
    assert_eq!(result.records[0].result_rows, 0);
}

#[test]
fn udf_errors_propagate_with_context() {
    use std::sync::Arc;
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let mut catalog = workload_catalog();
    let schema =
        miso::data::Schema::new(vec![miso::data::Field::new("x", miso::data::DataType::Int)]);
    catalog.add_udf("exploder", schema.clone());
    let mut udfs = standard_udfs();
    udfs.register(miso::exec::Udf::new(
        "exploder",
        schema,
        Arc::new(|_row: &miso::data::Row| Err(miso::common::MisoError::Execution("boom".into()))),
    ));
    let q = compile(
        "SELECT e.x FROM APPLY(exploder, twitter) e WHERE e.x > 0",
        &catalog,
    )
    .unwrap();
    let mut src = MemSource::new();
    src.add_log("twitter", corpus.twitter.lines.clone());
    let err = execute(&q, &src, &udfs).unwrap_err();
    assert!(err.to_string().contains("boom"));
}

#[test]
fn degenerate_budgets_still_run() {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let catalog = workload_catalog();
    let q = compile(
        "SELECT t.city AS c, COUNT(*) AS n FROM twitter t WHERE t.followers > 1 GROUP BY t.city",
        &catalog,
    )
    .unwrap();
    // All budgets zero: the system degrades to MS-BASIC-like behaviour.
    let zero = Budgets::new(ByteSize::ZERO, ByteSize::ZERO, ByteSize::ZERO)
        .with_discretization(ByteSize::from_kib(16));
    let mut sys = MultistoreSystem::new(
        &corpus,
        catalog,
        standard_udfs(),
        SystemConfig::paper_default(zero),
    );
    let queries: Vec<_> = (0..4).map(|i| (format!("q{i}"), q.clone())).collect();
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert_eq!(result.records.len(), 4);
    assert!(sys.dw.view_names().is_empty());
    // HV may hold views created since the *last* reorganization (the budget
    // is only enforced at tuning time, paper §3.1), but every reorg must
    // have enforced B_h = 0 when it ran.
    for reorg in &result.reorgs {
        assert!(reorg.moved_to_dw.is_empty());
    }
}

/// The registry-driven sibling of `missing_log_is_a_store_error_not_a_panic`:
/// where a fail point exists (`hv.execute`), faults are injected through
/// the chaos registry instead of being hand-shaped, and still surface as
/// a precise layered error once retries are exhausted — never a panic.
#[test]
fn injected_hv_outage_is_a_transient_error_not_a_panic() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();

    let corpus = Corpus::generate(&LogsConfig::tiny());
    let catalog = workload_catalog();
    let q = compile(
        "SELECT COUNT(*) AS n FROM twitter t WHERE t.tweet_id >= 0",
        &catalog,
    )
    .unwrap();
    miso::chaos::install(FaultPlan::seeded(11).with_rule(FaultRule::new(
        "hv.execute",
        FaultKind::Error,
        Trigger::Always,
    )));
    let mut sys = MultistoreSystem::new(
        &corpus,
        catalog,
        standard_udfs(),
        SystemConfig::paper_default(budgets()),
    );
    let err = sys
        .run_workload(Variant::HvOnly, &[("q".into(), q)])
        .unwrap_err();
    let attempts = miso::chaos::hit_count("hv.execute");
    assert_eq!(err.layer(), "transient");
    assert!(err.to_string().contains("HV"), "{err}");
    assert!(
        attempts > 1,
        "a hard outage must be retried before surfacing ({attempts} attempts)"
    );
}

/// The registry-driven sibling of `corrupted_log_lines_are_skipped_not_fatal`:
/// mangled *input* lines are skipped at parse time, while silent corruption
/// of a *stored view* (injected via the `corrupt` chaos kind) is caught by
/// read-time verification, quarantined, and recomputed — either way every
/// served answer stays correct.
#[test]
fn injected_view_corruption_is_quarantined_and_answers_stay_correct() {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ChaosGuard;
    miso::chaos::disable();
    miso_obs::init(miso_obs::ObsConfig::ring(4096));
    miso_obs::reset_metrics();

    let corpus = Corpus::generate(&LogsConfig::tiny());
    let catalog = workload_catalog();
    let q = compile(
        "SELECT t.city AS c, COUNT(*) AS n FROM twitter t WHERE t.followers > 1 GROUP BY t.city",
        &catalog,
    )
    .unwrap();
    let queries: Vec<_> = (0..3).map(|i| (format!("q{i}"), q.clone())).collect();
    let system = || {
        MultistoreSystem::new(
            &corpus,
            workload_catalog(),
            standard_udfs(),
            SystemConfig::paper_default(budgets()),
        )
    };
    let clean = system().run_workload(Variant::HvOp, &queries).unwrap();

    // Corrupt the first stored-view read; q0 harvests the view, q1 trips
    // verification and must fall back to recomputing from the raw logs.
    miso::common::integrity::set_verify_on_read(true);
    miso::chaos::install(FaultPlan::seeded(5).with_rule(FaultRule::new(
        "hv.view_read",
        FaultKind::Corrupt,
        Trigger::UpTo(1),
    )));
    let mut sys = system();
    let faulted = sys
        .run_workload(Variant::HvOp, &queries)
        .expect("corruption must be quarantined, not fatal");

    let rows = |r: &miso::core::ExperimentResult| -> Vec<u64> {
        r.records.iter().map(|rec| rec.result_rows).collect()
    };
    assert_eq!(
        rows(&clean),
        rows(&faulted),
        "a corrupted stored view leaked into an answer"
    );
    let snap = miso_obs::snapshot();
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    assert!(
        counter("integrity.checksum_failures") >= 1,
        "the injected corruption went undetected"
    );
    assert_eq!(
        counter("integrity.checksum_failures"),
        counter("integrity.quarantined")
    );
    assert!(
        sys.catalog.quarantined_names().is_empty(),
        "re-running the query must repair or drop the quarantined view"
    );
}

#[test]
fn reorg_with_no_views_and_no_history_is_harmless() {
    let corpus = Corpus::generate(&LogsConfig::tiny());
    let catalog = workload_catalog();
    let q = compile(
        "SELECT COUNT(*) AS n FROM landmarks l WHERE l.rating > 0.0",
        &catalog,
    )
    .unwrap();
    let mut cfg = SystemConfig::paper_default(budgets());
    cfg.reorg_every = 1; // reorganize between every pair of queries
    let mut sys = MultistoreSystem::new(&corpus, catalog, standard_udfs(), cfg);
    let queries: Vec<_> = (0..3).map(|i| (format!("q{i}"), q.clone())).collect();
    let result = sys.run_workload(Variant::MsMiso, &queries).unwrap();
    assert_eq!(result.records.len(), 3);
    assert_eq!(result.reorgs.len(), 2);
}
