//! Marketing analytics: the paper's full evaluation scenario — eight
//! analysts exploring social-media logs for restaurant-marketing insights,
//! 32 evolving queries, MISO tuning both stores online.
//!
//! Run with:
//! ```text
//! cargo run --release --example marketing_analytics
//! ```

use miso::common::Budgets;
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::workload::{compile_workload, standard_udfs, workload_catalog};

fn main() {
    let corpus = Corpus::generate(&LogsConfig::experiment());
    let catalog = workload_catalog();
    let workload = compile_workload(&catalog).unwrap();
    println!(
        "workload: {} queries over {} of logs\n",
        workload.len(),
        corpus.total_size()
    );

    // Paper-style budgets: 2x of each store's base data, small transfer
    // budget per reorganization phase.
    let base = corpus.total_size();
    let budgets = Budgets::new(base.scale(2.0), base.scale(0.2), base.scale(0.02))
        .with_discretization(miso::common::ByteSize::from_kib(8));

    // Run the same stream under three regimes and compare.
    let mut rows = Vec::new();
    for variant in [Variant::HvOnly, Variant::MsBasic, Variant::MsMiso] {
        let config = SystemConfig::paper_default(budgets);
        let mut system =
            MultistoreSystem::new(&corpus, workload_catalog(), standard_udfs(), config);
        let result = system.run_workload(variant, &workload).unwrap();
        rows.push((variant, result));
    }

    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>11}",
        "variant", "HV-EXE", "DW-EXE", "TRANSFER", "TUNE", "TTI (ks)"
    );
    for (variant, r) in &rows {
        println!(
            "{:>9} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11.1}",
            variant.name(),
            r.tti.hv_exe.as_secs_f64() / 1000.0,
            r.tti.dw_exe.as_secs_f64() / 1000.0,
            r.tti.transfer.as_secs_f64() / 1000.0,
            r.tti.tune.as_secs_f64() / 1000.0,
            r.tti_total().as_secs_f64() / 1000.0,
        );
    }

    let hv_only = rows[0].1.tti_total().as_secs_f64();
    let miso = rows[2].1.tti_total().as_secs_f64();
    println!("\nMISO speedup over Hive-only: {:.1}x", hv_only / miso);

    // Which analysts benefited most? Group per-query times by analyst.
    println!("\nper-analyst total execution time (ks), MS-MISO vs HV-ONLY:");
    for analyst in 1..=8 {
        let label = format!("A{analyst}");
        let sum = |r: &miso::core::ExperimentResult| -> f64 {
            r.records
                .iter()
                .filter(|rec| rec.label.starts_with(&label))
                .map(|rec| rec.exec_total().as_secs_f64())
                .sum::<f64>()
                / 1000.0
        };
        let cold = sum(&rows[0].1);
        let tuned = sum(&rows[2].1);
        println!(
            "  {label}: {cold:>6.1} -> {tuned:>6.1}  ({:.1}x)",
            cold / tuned.max(1e-9)
        );
    }

    // The queries that ended up fully accelerated.
    let fast: Vec<&str> = rows[2]
        .1
        .records
        .iter()
        .filter(|rec| rec.dw_utilization() > 0.5)
        .map(|rec| rec.label.as_str())
        .collect();
    println!("\nqueries that ran mostly in the warehouse: {fast:?}");
}
