//! Capacity planning: how do the view storage and transfer budgets trade
//! off against query acceleration and warehouse interference?
//!
//! Sweeps `B_h`/`B_d` multiples and `B_t`, and shows the Table-2-style
//! mutual impact when the warehouse already runs a reporting workload.
//!
//! Run with:
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use miso::common::Budgets;
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::dw::{BackgroundSim, Resource};
use miso::workload::{compile_workload, standard_udfs, workload_catalog};

fn run(
    corpus: &Corpus,
    workload: &[(String, miso::plan::LogicalPlan)],
    budgets: Budgets,
    background: Option<BackgroundSim>,
) -> (miso::core::ExperimentResult, Option<f64>) {
    let mut config = SystemConfig::paper_default(budgets);
    config.background = background;
    let mut system = MultistoreSystem::new(corpus, workload_catalog(), standard_udfs(), config);
    let result = system.run_workload(Variant::MsMiso, workload).unwrap();
    let bg_slowdown = system.background().map(|bg| bg.bg_slowdown_percent());
    (result, bg_slowdown)
}

fn main() {
    let corpus = Corpus::generate(&LogsConfig::experiment());
    let catalog = workload_catalog();
    let workload = compile_workload(&catalog).unwrap();
    let base = corpus.total_size();

    println!("== storage-budget sweep (B_t fixed at 2% of base) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>12}",
        "budget", "TTI (ks)", "views in DW", "reorg moves"
    );
    for mult in [0.125, 0.5, 2.0] {
        let budgets = Budgets::new(base.scale(mult), base.scale(0.1 * mult), base.scale(0.02))
            .with_discretization(miso::common::ByteSize::from_kib(8));
        let (result, _) = run(&corpus, &workload, budgets, None);
        let moved: usize = result.reorgs.iter().map(|r| r.moved_to_dw.len()).sum();
        println!(
            "{:>7}x {:>10.1} {:>12} {:>12}",
            mult,
            result.tti_total().as_secs_f64() / 1000.0,
            result
                .reorgs
                .last()
                .map(|r| r.moved_to_dw.len())
                .unwrap_or(0),
            moved
        );
    }

    println!("\n== transfer-budget sweep (storage fixed at 2x) ==");
    println!("{:>8} {:>10} {:>11}", "B_t", "TTI (ks)", "tune (ks)");
    for bt_frac in [0.0025, 0.01, 0.02, 0.08] {
        let budgets = Budgets::new(base.scale(2.0), base.scale(0.2), base.scale(bt_frac))
            .with_discretization(miso::common::ByteSize::from_kib(8));
        let (result, _) = run(&corpus, &workload, budgets, None);
        println!(
            "{:>7.2}% {:>10.1} {:>11.2}",
            bt_frac * 100.0,
            result.tti_total().as_secs_f64() / 1000.0,
            result.tti.tune.as_secs_f64() / 1000.0
        );
    }

    println!("\n== interference with a busy warehouse (storage 2x, B_t 2%) ==");
    println!("{:>10} {:>14} {:>14}", "spare", "bg slowdown", "TTI (ks)");
    let budgets = Budgets::new(base.scale(2.0), base.scale(0.2), base.scale(0.02))
        .with_discretization(miso::common::ByteSize::from_kib(8));
    for (resource, spare) in [(Resource::Io, 40), (Resource::Io, 20), (Resource::Cpu, 20)] {
        let bg = BackgroundSim::paper_config(resource, spare);
        let label = format!(
            "{} {spare}%",
            if resource == Resource::Io {
                "IO"
            } else {
                "CPU"
            }
        );
        let (result, bg_slowdown) = run(&corpus, &workload, budgets, Some(bg));
        println!(
            "{:>10} {:>13.1}% {:>14.1}",
            label,
            bg_slowdown.unwrap(),
            result.tti_total().as_secs_f64() / 1000.0
        );
    }
    println!(
        "\ntakeaway: modest budgets already capture most of the acceleration, \
         and the reporting workload barely notices — the paper's §5.4 story."
    );
}
