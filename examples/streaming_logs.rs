//! Streaming logs: the paper's §6 future-work scenario — the HDFS logs keep
//! growing (append-only) while analysts keep querying. Compares the two
//! view-maintenance policies:
//!
//! * `Invalidate`: drop affected views, let them regrow opportunistically;
//! * `Refresh`: keep the design warm (incremental for per-record views,
//!   full recomputation otherwise).
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_logs
//! ```

use miso::common::{Budgets, ByteSize, SimClock};
use miso::core::{MaintenancePolicy, MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{generate_delta, Corpus, LogKind, LogsConfig};
use miso::lang::compile;
use miso::workload::{standard_udfs, workload_catalog};

fn build(corpus: &Corpus) -> MultistoreSystem {
    let budgets = Budgets::new(
        ByteSize::from_mib(64),
        ByteSize::from_mib(8),
        ByteSize::from_mib(4),
    )
    .with_discretization(ByteSize::from_kib(16));
    let mut config = SystemConfig::paper_default(budgets);
    config.reorg_every = 2;
    MultistoreSystem::new(corpus, workload_catalog(), standard_udfs(), config)
}

fn main() {
    let cfg = LogsConfig::tiny();
    let catalog = workload_catalog();
    let query = |sql: &str| compile(sql, &catalog).unwrap();
    let analyst_queries = vec![
        (
            "q0".to_string(),
            query(
                "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > 20 GROUP BY t.city",
            ),
        ),
        (
            "q1".to_string(),
            query(
                "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
                 WHERE t.followers > 20 GROUP BY t.city ORDER BY n DESC",
            ),
        ),
    ];

    for policy in [MaintenancePolicy::Invalidate, MaintenancePolicy::Refresh] {
        println!("=== policy: {policy:?} ===");
        let corpus = Corpus::generate(&cfg);
        let mut system = build(&corpus);
        let mut clock = SimClock::new();
        let mut total_rows = 0;

        for epoch in 0..3u64 {
            // Analysts query...
            let result = system
                .run_workload(Variant::MsMiso, &analyst_queries)
                .unwrap();
            total_rows += result.records.iter().map(|r| r.result_rows).sum::<u64>();
            println!(
                "  epoch {epoch}: queries ran, exec total {:.0}s, {} views live",
                result
                    .records
                    .iter()
                    .map(|r| r.exec_total().as_secs_f64())
                    .sum::<f64>(),
                system.catalog.len()
            );
            // ...and fresh tweets stream in.
            let delta = generate_delta(&cfg, LogKind::Twitter, epoch, 200);
            let report = system
                .append_log(LogKind::Twitter, delta, policy, &mut clock)
                .unwrap();
            println!(
                "           +{} appended: {} invalidated, {} delta-refreshed, \
                 {} recomputed, maintenance {:.1}s",
                report.appended,
                report.invalidated.len(),
                report.delta_refreshed.len(),
                report.recomputed.len(),
                report.cost.as_secs_f64()
            );
        }
        println!("  (checksum of result rows across epochs: {total_rows})\n");
    }
    println!(
        "Invalidate pays nothing at append time but re-derives views on the \
         next query; Refresh pays maintenance up-front and keeps the next \
         query fast — the trade-off the paper's §6 sketches."
    );
}
