//! Quickstart: stand up a multistore system, pose a HiveQL query over raw
//! JSON logs, and watch MISO tune the physical design.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use miso::common::{Budgets, ByteSize};
use miso::core::{MultistoreSystem, SystemConfig, Variant};
use miso::data::logs::{Corpus, LogsConfig};
use miso::lang::compile;
use miso::workload::{standard_udfs, workload_catalog};

fn main() {
    // 1. Generate a synthetic social-media corpus (Twitter + Foursquare +
    //    Landmarks logs as JSON lines, deterministic from the seed).
    let corpus = Corpus::generate(&LogsConfig::tiny());
    println!(
        "corpus: {} tweets, {} check-ins, {} landmarks ({} total)",
        corpus.twitter.len(),
        corpus.foursquare.len(),
        corpus.landmarks.len(),
        corpus.total_size()
    );

    // 2. Build the multistore system: HV (Hive-like, holds the logs) plus
    //    DW (warehouse-like, empty), with view storage/transfer budgets.
    let budgets = Budgets::new(
        ByteSize::from_mib(64), // B_h
        ByteSize::from_mib(8),  // B_d
        ByteSize::from_mib(4),  // B_t per reorganization
    )
    .with_discretization(ByteSize::from_kib(16));
    let mut config = SystemConfig::paper_default(budgets);
    config.reorg_every = 2; // tune aggressively for this tiny demo
    let mut system = MultistoreSystem::new(&corpus, workload_catalog(), standard_udfs(), config);

    // 3. Pose an evolving sequence of HiveQL queries, the way an analyst
    //    iterates. Queries are declarative over the raw logs; the SerDe
    //    extraction, splitting, and view reuse all happen inside.
    let catalog = workload_catalog();
    let sqls = [
        (
            "explore",
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
                     WHERE t.followers > 100 GROUP BY t.city",
        ),
        (
            "refine",
            "SELECT t.city AS city, COUNT(*) AS n FROM twitter t \
                    WHERE t.followers > 100 GROUP BY t.city \
                    HAVING COUNT(*) > 5 ORDER BY n DESC",
        ),
        (
            "pivot",
            "SELECT t.lang AS lang, COUNT(*) AS n FROM twitter t \
                   WHERE t.followers > 100 GROUP BY t.lang",
        ),
        (
            "zoom",
            "SELECT t.lang AS lang, COUNT(*) AS n FROM twitter t \
                  WHERE t.followers > 100 GROUP BY t.lang ORDER BY n DESC LIMIT 3",
        ),
    ];
    let queries: Vec<(String, _)> = sqls
        .iter()
        .map(|(label, sql)| (label.to_string(), compile(sql, &catalog).unwrap()))
        .collect();

    let result = system.run_workload(Variant::MsMiso, &queries).unwrap();

    // 4. Inspect what happened.
    println!("\nper-query breakdown (simulated seconds):");
    println!(
        "{:>8} {:>10} {:>8} {:>8} {:>6} {:>12}",
        "query", "HV", "DW", "xfer", "rows", "views used"
    );
    for rec in &result.records {
        println!(
            "{:>8} {:>10.1} {:>8.2} {:>8.1} {:>6} {:>12}",
            rec.label,
            rec.hv.as_secs_f64(),
            rec.dw.as_secs_f64(),
            rec.transfer.as_secs_f64(),
            rec.result_rows,
            rec.used_views.len()
        );
    }
    println!("\nreorganizations: {}", result.reorgs.len());
    for (i, r) in result.reorgs.iter().enumerate() {
        println!(
            "  phase {i}: {} view(s) -> DW, {} -> HV, {} moved",
            r.moved_to_dw.len(),
            r.moved_to_hv.len(),
            r.bytes_moved
        );
    }
    println!("\nTTI breakdown:");
    println!("  HV-EXE   {:>10.1}s", result.tti.hv_exe.as_secs_f64());
    println!("  DW-EXE   {:>10.1}s", result.tti.dw_exe.as_secs_f64());
    println!("  TRANSFER {:>10.1}s", result.tti.transfer.as_secs_f64());
    println!("  TUNE     {:>10.1}s", result.tti.tune.as_secs_f64());
    println!("  total    {:>10.1}s", result.tti_total().as_secs_f64());
    println!(
        "\nfinal design: {} view(s) in HV, {} in DW",
        system.hv.view_names().len(),
        system.dw.view_names().len()
    );
}
