//! What-if explorer: poke the multistore optimizer directly — enumerate a
//! query's split points, cost them under hypothetical physical designs, and
//! see how view placement changes the chosen plan.
//!
//! This is the interface the MISO tuner uses while packing its knapsacks.
//!
//! Run with:
//! ```text
//! cargo run --release --example whatif_explorer
//! ```

use miso::common::ids::NodeId;
use miso::data::logs::{Corpus, LogsConfig};
use miso::dw::DwStore;
use miso::hv::HvStore;
use miso::lang::compile;
use miso::optimizer::cost::{estimate_split_cost, TransferModel};
use miso::optimizer::optimize::{optimize, Design, OptimizerEnv};
use miso::plan::estimate::{estimate_plan, MapStats};
use miso::plan::fingerprint::fingerprint_subtree;
use miso::plan::split::enumerate_splits;
use miso::plan::Operator;
use miso::workload::workload_catalog;
use std::collections::HashSet;

fn main() {
    let corpus = Corpus::generate(&LogsConfig::experiment());
    let catalog = workload_catalog();
    let sql = "SELECT t.city AS city, COUNT(*) AS n, AVG(t.sentiment) AS mood \
               FROM twitter t JOIN foursquare f ON t.user_id = f.user_id \
               WHERE t.followers > 1000 AND f.likes > 5 \
               GROUP BY t.city ORDER BY n DESC LIMIT 10";
    let plan = compile(sql, &catalog).unwrap();
    println!("query:\n{sql}\n\nlogical plan:\n{}", plan.render());

    // True sizes for the optimizer's estimates.
    let mut stats = MapStats::new();
    stats.set_log(
        "twitter",
        corpus.twitter.len() as f64,
        corpus.twitter.size.as_bytes() as f64,
    );
    stats.set_log(
        "foursquare",
        corpus.foursquare.len() as f64,
        corpus.foursquare.size.as_bytes() as f64,
    );

    let hv = HvStore::new();
    let dw = DwStore::new();
    let transfer = TransferModel::paper_default();

    // 1. Enumerate every split and show the cost landscape (Figure 3 style).
    let estimates = estimate_plan(&plan, &stats);
    let mut splits: Vec<_> = enumerate_splits(&plan)
        .into_iter()
        .map(|split| {
            let c = estimate_split_cost(
                &plan,
                &split,
                &estimates,
                &hv.cost_model,
                &dw.cost_model,
                &transfer,
            );
            (split, c)
        })
        .collect();
    splits.sort_by_key(|(_, c)| c.total());
    println!("split landscape ({} valid splits):", splits.len());
    for (split, c) in splits.iter().take(5) {
        println!(
            "  hv_ops={:<2} hv={:>7.0}s xfer={:>6.0}s dw={:>5.1}s total={:>7.0}s",
            split.hv_nodes().len(),
            c.hv.as_secs_f64(),
            c.transfer.as_secs_f64(),
            c.dw.as_secs_f64(),
            c.total().as_secs_f64()
        );
    }

    // 2. Cost the query under hypothetical designs: no views, the join view
    //    in HV, the join view in DW.
    let join_node = plan
        .nodes()
        .iter()
        .find(|n| matches!(n.op, Operator::Join { .. }))
        .unwrap()
        .id;
    let join_view = fingerprint_subtree(&plan, join_node).view_name();
    // Pretend the view was materialized with these statistics.
    stats.set_view(join_view.clone(), 2_000.0, 2_000.0 * 60.0);

    let scenarios: [(&str, Design); 3] = [
        ("cold (no views)", Design::new()),
        (
            "join view resident in HV",
            Design {
                hv_views: HashSet::from([join_view.clone()]),
                dw_views: HashSet::new(),
            },
        ),
        (
            "join view resident in DW",
            Design {
                hv_views: HashSet::new(),
                dw_views: HashSet::from([join_view.clone()]),
            },
        ),
    ];
    println!("\nwhat-if costs under hypothetical designs:");
    for (label, design) in scenarios {
        let env = OptimizerEnv {
            stats: &stats,
            hv: &hv.cost_model,
            dw: &dw.cost_model,
            transfer: &transfer,
            catalog: None,
        };
        let planned = optimize(&plan, &design, &env).unwrap();
        println!(
            "  {label:<28} total={:>8.1}s  (hv={:>7.1}s, xfer={:>6.1}s, dw={:>5.2}s; views used: {})",
            planned.est.total().as_secs_f64(),
            planned.est.hv.as_secs_f64(),
            planned.est.transfer.as_secs_f64(),
            planned.est.dw.as_secs_f64(),
            planned.used_views.len(),
        );
    }
    println!(
        "\nnote how the same view is worth far more in the warehouse than in \
         Hive — that asymmetry is the whole reason MISO packs DW first."
    );

    // 3. EXPLAIN the chosen plan under the DW-resident design.
    let env = OptimizerEnv {
        stats: &stats,
        hv: &hv.cost_model,
        dw: &dw.cost_model,
        transfer: &transfer,
        catalog: None,
    };
    let design = Design {
        hv_views: HashSet::new(),
        dw_views: HashSet::from([join_view]),
    };
    let chosen = optimize(&plan, &design, &env).unwrap();
    println!(
        "\nEXPLAIN (join view in DW):\n{}",
        miso::optimizer::explain(&chosen)
    );
    let _ = NodeId(0); // silence unused-import lints on some toolchains
}
