#!/usr/bin/env bash
# Tier-1 verification entry point: formatting, lints, build, tests.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos smoke (seeded fault injection)"
cargo run --release -q -p miso-bench --bin chaos

echo "==> integrity smoke (seeded silent corruption)"
cargo run --release -q -p miso-bench --bin integrity

echo "==> soakbench smoke (guard storm: stalls, hogs, corruption, crashes)"
cargo run --release -q -p miso-bench --bin soakbench -- --smoke

echo "==> tunerbench perf smoke (record-only)"
cargo run --release -q -p miso-bench --bin tunerbench -- --smoke

echo "==> execbench perf smoke, row mode (MISO_COL=0; output verified against serial)"
MISO_COL=0 cargo run --release -q -p miso-bench --bin execbench -- --smoke

echo "==> execbench perf smoke, columnar mode (record-only; output verified against serial)"
MISO_COL=1 cargo run --release -q -p miso-bench --bin execbench -- --smoke

echo "==> servebench smoke (concurrent serving: epochs, drain, fairness, storm)"
cargo run --release -q -p miso-bench --bin servebench -- --smoke

echo "==> ivmbench smoke (delta maintenance vs full recompute; checksum identity)"
cargo run --release -q -p miso-bench --bin ivmbench -- --smoke

echo "==> benchguard (smoke vs committed BENCH_*.json; warn-only unless MISO_BENCH_STRICT=1)"
cargo run --release -q -p miso-bench --bin benchguard

echo "ci: all checks passed"
